#include "benchdata/templates.h"

#include "common/str_util.h"
#include "data/stats.h"

namespace vegaplus {
namespace benchdata {

namespace {

using json::Value;
using spec::BindKind;
using spec::DataSpec;
using spec::MarkSpec;
using spec::ScaleSpec;
using spec::SignalSpec;
using spec::TransformSpec;
using spec::VegaSpec;

// ---- Small JSON builders for transform params ----

Value FieldJson(const std::string& fixed) { return Value(fixed); }

Value SignalFieldJson(const std::string& signal) {
  Value v = Value::MakeObject();
  v.Set("signal", signal);
  return v;
}

TransformSpec Filter(const std::string& expr) {
  Value t = Value::MakeObject();
  t.Set("type", "filter");
  t.Set("expr", expr);
  return {"filter", t};
}

TransformSpec Extent(Value field, const std::string& out_signal) {
  Value t = Value::MakeObject();
  t.Set("type", "extent");
  t.Set("field", std::move(field));
  t.Set("signal", out_signal);
  return {"extent", t};
}

TransformSpec Bin(Value field, const std::string& extent_signal, Value maxbins,
                  const std::string& as0 = "bin0", const std::string& as1 = "bin1") {
  Value t = Value::MakeObject();
  t.Set("type", "bin");
  t.Set("field", std::move(field));
  Value extent = Value::MakeObject();
  extent.Set("signal", extent_signal);
  t.Set("extent", std::move(extent));
  t.Set("maxbins", std::move(maxbins));
  Value as = Value::MakeArray({Value(as0), Value(as1)});
  t.Set("as", std::move(as));
  return {"bin", t};
}

TransformSpec Aggregate(std::vector<Value> groupby, std::vector<std::string> ops,
                        std::vector<Value> fields, std::vector<std::string> as) {
  Value t = Value::MakeObject();
  t.Set("type", "aggregate");
  Value g = Value::MakeArray();
  for (auto& v : groupby) g.Append(std::move(v));
  t.Set("groupby", std::move(g));
  Value o = Value::MakeArray();
  for (const auto& s : ops) o.Append(Value(s));
  t.Set("ops", std::move(o));
  Value f = Value::MakeArray();
  for (auto& v : fields) f.Append(std::move(v));
  t.Set("fields", std::move(f));
  Value a = Value::MakeArray();
  for (const auto& s : as) a.Append(Value(s));
  t.Set("as", std::move(a));
  return {"aggregate", t};
}

TransformSpec CountBy(std::vector<Value> groupby, const std::string& as = "count") {
  return Aggregate(std::move(groupby), {"count"}, {Value(nullptr)}, {as});
}

TransformSpec Collect(const std::string& field, bool descending = false) {
  Value t = Value::MakeObject();
  t.Set("type", "collect");
  Value sort = Value::MakeObject();
  sort.Set("field", field);
  Value order = Value::MakeArray({Value(descending ? "descending" : "ascending")});
  sort.Set("order", std::move(order));
  t.Set("sort", std::move(sort));
  return {"collect", t};
}

TransformSpec Stack(const std::string& field, std::vector<Value> groupby,
                    const std::string& sort_field) {
  Value t = Value::MakeObject();
  t.Set("type", "stack");
  t.Set("field", field);
  Value g = Value::MakeArray();
  for (auto& v : groupby) g.Append(std::move(v));
  t.Set("groupby", std::move(g));
  Value sort = Value::MakeObject();
  sort.Set("field", sort_field);
  t.Set("sort", std::move(sort));
  return {"stack", t};
}

TransformSpec Timeunit(const std::string& field, const std::string& unit) {
  Value t = Value::MakeObject();
  t.Set("type", "timeunit");
  t.Set("field", field);
  t.Set("units", unit);
  return {"timeunit", t};
}

SignalSpec PlainSignal(const std::string& name, Value init) {
  SignalSpec s;
  s.name = name;
  s.init = std::move(init);
  return s;
}

Value ExtentJson(double lo, double hi) {
  return Value::MakeArray({Value(lo), Value(hi)});
}

// Numeric extent of a field from table stats (falls back to [0, 1]).
void FieldExtent(const data::TableStats& stats, const std::string& field, double* lo,
                 double* hi) {
  const data::ColumnStats* cs = stats.Find(field);
  if (cs != nullptr && cs->has_extent) {
    *lo = cs->min;
    *hi = cs->max;
  } else {
    *lo = 0;
    *hi = 1;
  }
}

std::string Pick(const std::vector<std::string>& options, Rng* rng) {
  return options[rng->Index(options.size())];
}

// Pick `n` distinct entries (cycling when the pool is smaller).
std::vector<std::string> PickN(const std::vector<std::string>& options, size_t n,
                               Rng* rng) {
  std::vector<std::string> pool = options;
  rng->Shuffle(&pool);
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) out.push_back(pool[i % pool.size()]);
  return out;
}

SignalSpec IntervalSignal(const std::string& name, const std::string& field, double lo,
                          double hi) {
  SignalSpec s;
  s.name = name;
  s.init = ExtentJson(lo, hi);
  s.bind = BindKind::kInterval;
  s.bound_field = field;
  s.bind_min = lo;
  s.bind_max = hi;
  return s;
}

SignalSpec RangeSignal(const std::string& name, double init, double lo, double hi,
                       double step) {
  SignalSpec s;
  s.name = name;
  s.init = Value(init);
  s.bind = BindKind::kRange;
  s.bind_min = lo;
  s.bind_max = hi;
  s.bind_step = step;
  return s;
}

SignalSpec SelectSignal(const std::string& name, const std::string& init,
                        const std::vector<std::string>& options) {
  SignalSpec s;
  s.name = name;
  s.init = Value(init);
  s.bind = BindKind::kSelect;
  for (const auto& o : options) s.options.push_back(Value(o));
  return s;
}

SignalSpec PointSignal(const std::string& name, const std::vector<data::Value>& domain) {
  SignalSpec s;
  s.name = name;
  s.init = Value(nullptr);  // no selection
  s.bind = BindKind::kPoint;
  for (const auto& v : domain) {
    if (v.is_string()) s.options.push_back(Value(v.AsString()));
  }
  return s;
}

ScaleSpec DataScale(const std::string& name, const std::string& data,
                    const std::string& field) {
  ScaleSpec s;
  s.name = name;
  s.domain_data = data;
  s.domain_field = field;
  return s;
}

ScaleSpec SignalScale(const std::string& name, const std::string& signal) {
  ScaleSpec s;
  s.name = name;
  s.domain_signal = signal;
  return s;
}

MarkSpec Mark(const std::string& type, const std::string& from) {
  MarkSpec m;
  m.type = type;
  m.from_data = from;
  return m;
}

// ---- Individual templates ----

VegaSpec TrellisStackedBar(const Dataset& ds, const data::TableStats& /*stats*/,
                           Rng* rng) {
  auto cats = PickN(ds.categorical, 2, rng);
  const std::string& x = cats[0];
  const std::string& color = cats[1];
  VegaSpec spec;
  spec.name = "trellis_stacked_bar";
  DataSpec root;
  root.name = "source";
  root.table = ds.name;
  DataSpec stacked;
  stacked.name = "stacked";
  stacked.source = "source";
  stacked.transforms = {
      CountBy({FieldJson(x), FieldJson(color)}),
      Stack("count", {FieldJson(x)}, color),
      Collect(x),
  };
  spec.data = {root, stacked};
  spec.scales = {DataScale("x", "stacked", x), DataScale("y", "stacked", "y1"),
                 DataScale("color", "stacked", color)};
  spec.marks = {Mark("rect", "stacked")};
  return spec;
}

VegaSpec LineChart(const Dataset& ds, const data::TableStats& /*stats*/, Rng* rng) {
  const std::string t = Pick(ds.temporal, rng);
  const std::string q = Pick(ds.quantitative, rng);
  VegaSpec spec;
  spec.name = "line_chart";
  DataSpec root;
  root.name = "source";
  root.table = ds.name;
  DataSpec series;
  series.name = "series";
  series.source = "source";
  series.transforms = {
      Timeunit(t, "month"),
      Aggregate({FieldJson("unit0")}, {"mean"}, {FieldJson(q)}, {"mean_value"}),
  };
  spec.data = {root, series};
  spec.scales = {DataScale("x", "series", "unit0"),
                 DataScale("y", "series", "mean_value")};
  spec.marks = {Mark("line", "series")};
  return spec;
}

VegaSpec InteractiveHistogram(const Dataset& ds, const data::TableStats& /*stats*/,
                              Rng* rng) {
  const std::string initial_field = Pick(ds.quantitative, rng);
  VegaSpec spec;
  spec.name = "interactive_histogram";
  spec.signals = {
      SelectSignal("field", initial_field, ds.quantitative),
      RangeSignal("maxbins", 10, 5, 50, 1),
  };
  DataSpec root;
  root.name = "source";
  root.table = ds.name;
  DataSpec binned;
  binned.name = "binned";
  binned.source = "source";
  binned.transforms = {
      Extent(SignalFieldJson("field"), "x_extent"),
      Bin(SignalFieldJson("field"), "x_extent", SignalFieldJson("maxbins")),
      CountBy({FieldJson("bin0"), FieldJson("bin1")}),
  };
  spec.data = {root, binned};
  spec.scales = {SignalScale("x", "x_extent"), DataScale("y", "binned", "count")};
  spec.marks = {Mark("rect", "binned")};
  return spec;
}

VegaSpec ZoomableHeatmap(const Dataset& ds, const data::TableStats& stats, Rng* rng) {
  auto qs = PickN(ds.quantitative, 2, rng);
  const std::string& x = qs[0];
  const std::string& y = qs[1];
  double xlo, xhi, ylo, yhi;
  FieldExtent(stats, x, &xlo, &xhi);
  FieldExtent(stats, y, &ylo, &yhi);
  VegaSpec spec;
  spec.name = "zoomable_heatmap";
  spec.signals = {IntervalSignal("domain_x", x, xlo, xhi),
                  IntervalSignal("domain_y", y, ylo, yhi)};
  DataSpec root;
  root.name = "source";
  root.table = ds.name;
  DataSpec density;
  density.name = "density";
  density.source = "source";
  density.transforms = {
      Filter(StrFormat("inrange(datum.%s, domain_x) && inrange(datum.%s, domain_y)",
                       x.c_str(), y.c_str())),
      Bin(FieldJson(x), "domain_x", Value(30), "xb0", "xb1"),
      Bin(FieldJson(y), "domain_y", Value(30), "yb0", "yb1"),
      CountBy({FieldJson("xb0"), FieldJson("xb1"), FieldJson("yb0"), FieldJson("yb1")}),
  };
  spec.data = {root, density};
  spec.scales = {SignalScale("x", "domain_x"), SignalScale("y", "domain_y"),
                 DataScale("color", "density", "count")};
  spec.marks = {Mark("rect", "density")};
  return spec;
}

VegaSpec Crossfilter(const Dataset& ds, const data::TableStats& stats, Rng* rng) {
  auto qs = PickN(ds.quantitative, 3, rng);
  VegaSpec spec;
  spec.name = "crossfilter";
  DataSpec root;
  root.name = "source";
  root.table = ds.name;
  spec.data.push_back(root);
  for (int i = 0; i < 3; ++i) {
    double lo, hi;
    FieldExtent(stats, qs[static_cast<size_t>(i)], &lo, &hi);
    spec.signals.push_back(IntervalSignal(StrFormat("brush_%d", i),
                                          qs[static_cast<size_t>(i)], lo, hi));
    spec.signals.push_back(
        PlainSignal(StrFormat("ext_%d", i), ExtentJson(lo, hi)));
  }
  for (int i = 0; i < 3; ++i) {
    const std::string& field = qs[static_cast<size_t>(i)];
    int j = (i + 1) % 3;
    int k = (i + 2) % 3;
    // Filtered histogram: brushes of the *other* two views apply.
    DataSpec hist;
    hist.name = StrFormat("hist_%d", i);
    hist.source = "source";
    hist.transforms = {
        Filter(StrFormat("inrange(datum.%s, brush_%d) && inrange(datum.%s, brush_%d)",
                         qs[static_cast<size_t>(j)].c_str(), j,
                         qs[static_cast<size_t>(k)].c_str(), k)),
        Bin(FieldJson(field), StrFormat("ext_%d", i), Value(20)),
        CountBy({FieldJson("bin0"), FieldJson("bin1")}),
    };
    spec.data.push_back(hist);
    // Gray layer: the full-data distribution, never re-filtered (§7.5).
    DataSpec gray;
    gray.name = StrFormat("gray_%d", i);
    gray.source = "source";
    gray.transforms = {
        Bin(FieldJson(field), StrFormat("ext_%d", i), Value(20)),
        CountBy({FieldJson("bin0"), FieldJson("bin1")}),
    };
    spec.data.push_back(gray);
    spec.scales.push_back(SignalScale(StrFormat("x_%d", i), StrFormat("ext_%d", i)));
    spec.marks.push_back(Mark("rect", hist.name));
    spec.marks.push_back(Mark("rect", gray.name));
  }
  return spec;
}

VegaSpec HeatmapBarChart(const Dataset& ds, const data::TableStats& stats, Rng* rng) {
  auto cats = PickN(ds.categorical, 2, rng);
  const std::string& heat_cat = cats[0];
  const std::string& bar_cat = cats[1];
  const std::string q = Pick(ds.quantitative, rng);
  double qlo, qhi;
  FieldExtent(stats, q, &qlo, &qhi);
  const data::ColumnStats* bar_stats = stats.Find(bar_cat);
  VegaSpec spec;
  spec.name = "heatmap_bar";
  spec.signals = {
      PointSignal("clicked", bar_stats != nullptr ? bar_stats->domain
                                                  : std::vector<data::Value>{}),
      RangeSignal("heat_bins", 15, 5, 40, 1),
  };
  DataSpec root;
  root.name = "source";
  root.table = ds.name;
  DataSpec heat;
  heat.name = "heat";
  heat.source = "source";
  heat.transforms = {
      Filter(StrFormat("clicked == null || datum.%s == clicked", bar_cat.c_str())),
      Extent(FieldJson(q), "q_extent"),
      Bin(FieldJson(q), "q_extent", SignalFieldJson("heat_bins")),
      CountBy({FieldJson(heat_cat), FieldJson("bin0"), FieldJson("bin1")}),
  };
  DataSpec bars;
  bars.name = "bars";
  bars.source = "source";
  bars.transforms = {
      CountBy({FieldJson(bar_cat)}),
      Collect("count", /*descending=*/true),
  };
  spec.data = {root, heat, bars};
  spec.scales = {DataScale("x", "heat", heat_cat), SignalScale("y", "q_extent"),
                 DataScale("color", "heat", "count"),
                 DataScale("bar_x", "bars", bar_cat)};
  spec.marks = {Mark("rect", "heat"), Mark("rect", "bars")};
  return spec;
}

VegaSpec OverviewDetail(const Dataset& ds, const data::TableStats& stats, Rng* rng) {
  const std::string t = Pick(ds.temporal, rng);
  const std::string q = Pick(ds.quantitative, rng);
  const std::string c = Pick(ds.categorical, rng);
  double tlo, thi;
  FieldExtent(stats, t, &tlo, &thi);
  const data::ColumnStats* cat_stats = stats.Find(c);
  VegaSpec spec;
  spec.name = "overview_detail";
  spec.signals = {
      IntervalSignal("time_brush", t, tlo, thi),
      PointSignal("bar_click", cat_stats != nullptr ? cat_stats->domain
                                                    : std::vector<data::Value>{}),
  };
  DataSpec root;
  root.name = "source";
  root.table = ds.name;
  DataSpec overview;
  overview.name = "overview";
  overview.source = "source";
  overview.transforms = {
      Filter(StrFormat("bar_click == null || datum.%s == bar_click", c.c_str())),
      Timeunit(t, "month"),
      CountBy({FieldJson("unit0"), FieldJson("unit1")}),
  };
  DataSpec detail;
  detail.name = "detail";
  detail.source = "source";
  detail.transforms = {
      Filter(StrFormat(
          "(bar_click == null || datum.%s == bar_click) && inrange(datum.%s, time_brush)",
          c.c_str(), t.c_str())),
      Extent(FieldJson(q), "detail_extent"),
      Bin(FieldJson(q), "detail_extent", Value(25)),
      CountBy({FieldJson("bin0"), FieldJson("bin1")}),
  };
  DataSpec bars;
  bars.name = "bars";
  bars.source = "source";
  bars.transforms = {
      CountBy({FieldJson(c)}),
      Collect("count", /*descending=*/true),
  };
  spec.data = {root, overview, detail, bars};
  spec.scales = {DataScale("ov_x", "overview", "unit0"),
                 SignalScale("detail_x", "detail_extent"),
                 DataScale("bar_x", "bars", c)};
  spec.marks = {Mark("area", "overview"), Mark("rect", "detail"), Mark("rect", "bars")};
  return spec;
}

}  // namespace

std::vector<TemplateId> AllTemplates() {
  return {TemplateId::kTrellisStackedBar, TemplateId::kLineChart,
          TemplateId::kInteractiveHistogram, TemplateId::kZoomableHeatmap,
          TemplateId::kCrossfilter, TemplateId::kHeatmapBarChart,
          TemplateId::kOverviewDetail};
}

const char* TemplateName(TemplateId id) {
  switch (id) {
    case TemplateId::kTrellisStackedBar: return "Trellis Stacked Bar Chart";
    case TemplateId::kLineChart: return "Line/Area Chart";
    case TemplateId::kInteractiveHistogram: return "Interactive Histogram";
    case TemplateId::kZoomableHeatmap: return "Zoomable Heatmap";
    case TemplateId::kCrossfilter: return "Crossfiltering With Three 2D Histograms";
    case TemplateId::kHeatmapBarChart: return "Heatmap and Bar Chart";
    case TemplateId::kOverviewDetail: return "Overview+Detail Chart With Bar Chart";
  }
  return "?";
}

bool IsInteractive(TemplateId id) {
  return id != TemplateId::kTrellisStackedBar && id != TemplateId::kLineChart;
}

Result<spec::VegaSpec> BuildTemplate(TemplateId id, const Dataset& dataset, Rng* rng) {
  if (!dataset.table) return Status::InvalidArgument("template: dataset has no table");
  if (dataset.quantitative.empty() || dataset.categorical.empty() ||
      dataset.temporal.empty()) {
    return Status::InvalidArgument("template: dataset missing field roles");
  }
  data::TableStats stats = data::ComputeTableStats(*dataset.table);
  switch (id) {
    case TemplateId::kTrellisStackedBar: return TrellisStackedBar(dataset, stats, rng);
    case TemplateId::kLineChart: return LineChart(dataset, stats, rng);
    case TemplateId::kInteractiveHistogram:
      return InteractiveHistogram(dataset, stats, rng);
    case TemplateId::kZoomableHeatmap: return ZoomableHeatmap(dataset, stats, rng);
    case TemplateId::kCrossfilter: return Crossfilter(dataset, stats, rng);
    case TemplateId::kHeatmapBarChart: return HeatmapBarChart(dataset, stats, rng);
    case TemplateId::kOverviewDetail: return OverviewDetail(dataset, stats, rng);
  }
  return Status::InvalidArgument("template: unknown id");
}

Result<BenchCase> MakeBenchCase(TemplateId id, const std::string& dataset_name,
                                size_t rows, uint64_t seed) {
  BenchCase bc;
  bc.id = id;
  VP_ASSIGN_OR_RETURN(bc.dataset, MakeDataset(dataset_name, rows, seed));
  Rng rng(seed ^ 0xBEEF);
  VP_ASSIGN_OR_RETURN(bc.spec, BuildTemplate(id, bc.dataset, &rng));
  return bc;
}

}  // namespace benchdata
}  // namespace vegaplus
