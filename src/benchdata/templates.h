// The seven benchmark dashboard templates (§6.1), implemented as
// dataset-agnostic spec builders: given a Dataset's field roles, each builder
// populates a concrete VegaSpec (Fig. 4) with signals, data pipelines,
// scales, and marks.
#ifndef VEGAPLUS_BENCHDATA_TEMPLATES_H_
#define VEGAPLUS_BENCHDATA_TEMPLATES_H_

#include <string>
#include <vector>

#include "benchdata/datasets.h"
#include "common/random.h"
#include "spec/spec.h"

namespace vegaplus {
namespace benchdata {

enum class TemplateId {
  kTrellisStackedBar,
  kLineChart,
  kInteractiveHistogram,
  kZoomableHeatmap,
  kCrossfilter,
  kHeatmapBarChart,
  kOverviewDetail,
};

std::vector<TemplateId> AllTemplates();
const char* TemplateName(TemplateId id);

/// Static templates (Trellis, Line) have no bound interaction signals.
bool IsInteractive(TemplateId id);

/// Populate `id` against `dataset` (random field choices from `rng`; data
/// statistics seed signal extents and widget domains).
Result<spec::VegaSpec> BuildTemplate(TemplateId id, const Dataset& dataset, Rng* rng);

/// \brief A ready-to-run benchmark case: populated spec + its dataset.
struct BenchCase {
  TemplateId id;
  spec::VegaSpec spec;
  Dataset dataset;
};

/// Convenience: generate dataset + populated template in one call.
Result<BenchCase> MakeBenchCase(TemplateId id, const std::string& dataset_name,
                                size_t rows, uint64_t seed);

}  // namespace benchdata
}  // namespace vegaplus

#endif  // VEGAPLUS_BENCHDATA_TEMPLATES_H_
