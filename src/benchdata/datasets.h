// Synthetic dataset generators standing in for the paper's five real-world
// sources (flights, movies, weather, taxis, stocks), with realistic schema
// roles, category skew, and value distributions, scalable to any row count
// (the paper scales its sources 50k .. 10M rows the same way).
#ifndef VEGAPLUS_BENCHDATA_DATASETS_H_
#define VEGAPLUS_BENCHDATA_DATASETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace vegaplus {
namespace benchdata {

/// \brief A generated dataset plus its field roles (which fields can fill
/// quantitative / categorical / temporal template slots — Fig. 4).
struct Dataset {
  std::string name;
  data::TablePtr table;
  std::vector<std::string> quantitative;
  std::vector<std::string> categorical;
  std::vector<std::string> temporal;
};

/// Names accepted by MakeDataset: "flights", "movies", "weather", "taxis",
/// "stocks".
std::vector<std::string> DatasetNames();

/// Generate `rows` rows of the named dataset deterministically from `seed`.
Result<Dataset> MakeDataset(const std::string& name, size_t rows, uint64_t seed);

}  // namespace benchdata
}  // namespace vegaplus

#endif  // VEGAPLUS_BENCHDATA_DATASETS_H_
