#include "benchdata/workload.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "json/json_writer.h"

namespace vegaplus {
namespace benchdata {

WorkloadGenerator::WorkloadGenerator(const spec::VegaSpec& spec, uint64_t seed)
    : rng_(seed) {
  for (const auto& s : spec.signals) {
    if (s.bind != spec::BindKind::kNone) bound_.push_back(s);
  }
}

Interaction WorkloadGenerator::Next() {
  Interaction out;
  if (bound_.empty()) return out;
  const spec::SignalSpec& sig = bound_[rng_.Index(bound_.size())];
  switch (sig.bind) {
    case spec::BindKind::kRange: {
      double steps = std::max(1.0, (sig.bind_max - sig.bind_min) / sig.bind_step);
      double v = sig.bind_min +
                 sig.bind_step * static_cast<double>(rng_.UniformInt(
                                     0, static_cast<int64_t>(steps)));
      out.updates.emplace_back(sig.name, expr::EvalValue::Number(v));
      out.description = sig.name + "=" + FormatDouble(v);
      break;
    }
    case spec::BindKind::kSelect: {
      if (sig.options.empty()) break;
      const json::Value& opt = sig.options[rng_.Index(sig.options.size())];
      out.updates.emplace_back(sig.name, expr::EvalValue::FromJson(opt));
      out.description = sig.name + "=" + json::Write(opt);
      break;
    }
    case spec::BindKind::kInterval: {
      // Brush a random sub-interval (10%..80% of the domain).
      double span = sig.bind_max - sig.bind_min;
      double width = span * rng_.Uniform(0.1, 0.8);
      double lo = sig.bind_min + rng_.Uniform(0, span - width);
      out.updates.emplace_back(
          sig.name, expr::EvalValue::Array({data::Value::Double(lo),
                                            data::Value::Double(lo + width)}));
      out.description = sig.name + "=[" + FormatDouble(lo) + "," +
                        FormatDouble(lo + width) + "]";
      break;
    }
    case spec::BindKind::kPoint: {
      // 25% of clicks clear the selection.
      if (sig.options.empty() || rng_.NextBool(0.25)) {
        out.updates.emplace_back(sig.name, expr::EvalValue::Null());
        out.description = sig.name + "=null";
      } else {
        const json::Value& opt = sig.options[rng_.Index(sig.options.size())];
        out.updates.emplace_back(sig.name, expr::EvalValue::FromJson(opt));
        out.description = sig.name + "=" + json::Write(opt);
      }
      break;
    }
    case spec::BindKind::kNone:
      break;
  }
  return out;
}

std::vector<Interaction> WorkloadGenerator::Session(size_t n) {
  std::vector<Interaction> session;
  session.reserve(n);
  for (size_t i = 0; i < n; ++i) session.push_back(Next());
  return session;
}

}  // namespace benchdata
}  // namespace vegaplus
