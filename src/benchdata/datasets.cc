#include "benchdata/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/csv.h"

namespace vegaplus {
namespace benchdata {

namespace {

using data::DataType;
using data::Schema;
using data::TableBuilder;
using data::Value;

int64_t Ts(const char* s) {
  int64_t ms = 0;
  data::ParseTimestamp(s, &ms);
  return ms;
}

Dataset MakeFlights(size_t rows, uint64_t seed) {
  // Modeled on the BTS on-time performance data the paper's Fig. 1 uses.
  static const char* kOrigins[] = {"ATL", "ORD", "DFW", "LAX", "DEN", "PHX", "IAH",
                                   "LAS", "DTW", "SFO", "SEA", "MSP", "JFK", "BOS",
                                   "SLC", "EWR", "MCO", "CLT", "PHL", "SAN"};
  static const char* kCarriers[] = {"WN", "AA", "DL", "UA", "US", "NW", "CO", "MQ",
                                    "OO", "XE"};
  Schema schema({{"date", DataType::kTimestamp},
                 {"origin", DataType::kString},
                 {"carrier", DataType::kString},
                 {"distance", DataType::kFloat64},
                 {"dep_delay", DataType::kFloat64},
                 {"arr_delay", DataType::kFloat64},
                 {"air_time", DataType::kFloat64}});
  TableBuilder builder(schema);
  builder.Reserve(rows);
  Rng rng(seed);
  const int64_t start = Ts("1987-10-01");
  const int64_t span = Ts("2008-04-30") - start;
  for (size_t i = 0; i < rows; ++i) {
    int64_t when = start + rng.UniformInt(0, span / 60000) * 60000;
    double distance = std::exp(rng.Normal(6.3, 0.7));  // lognormal, ~300-2500 mi
    distance = std::clamp(distance, 60.0, 4500.0);
    double dep_delay = rng.NextBool(0.6) ? rng.Uniform(-10, 10)
                                         : std::exp(rng.Normal(3.0, 1.0));
    dep_delay = std::clamp(dep_delay, -30.0, 600.0);
    double arr_delay = dep_delay + rng.Normal(0, 12);
    double air_time = distance / rng.Uniform(6.2, 8.6);
    std::vector<Value> row{
        Value::Timestamp(when),
        Value::String(kOrigins[rng.Zipf(20, 1.3)]),
        Value::String(kCarriers[rng.Zipf(10, 1.2)]),
        Value::Double(std::round(distance)),
        // ~1.5% missing delays, like real BTS data.
        rng.NextBool(0.015) ? Value::Null() : Value::Double(std::round(dep_delay)),
        rng.NextBool(0.02) ? Value::Null() : Value::Double(std::round(arr_delay)),
        Value::Double(std::round(air_time)),
    };
    builder.AppendRow(row);
  }
  Dataset ds;
  ds.name = "flights";
  ds.table = builder.Build();
  ds.quantitative = {"distance", "dep_delay", "arr_delay", "air_time"};
  ds.categorical = {"origin", "carrier"};
  ds.temporal = {"date"};
  return ds;
}

Dataset MakeMovies(size_t rows, uint64_t seed) {
  static const char* kGenres[] = {"Drama", "Comedy", "Action", "Thriller", "Romance",
                                  "Horror", "Adventure", "Documentary", "Musical",
                                  "Western", "Animation", "Fantasy"};
  static const char* kRatings[] = {"G", "PG", "PG-13", "R", "Not Rated"};
  Schema schema({{"release_date", DataType::kTimestamp},
                 {"genre", DataType::kString},
                 {"mpaa", DataType::kString},
                 {"imdb_rating", DataType::kFloat64},
                 {"rt_rating", DataType::kFloat64},
                 {"budget", DataType::kFloat64},
                 {"gross", DataType::kFloat64}});
  TableBuilder builder(schema);
  builder.Reserve(rows);
  Rng rng(seed);
  const int64_t start = Ts("1960-01-01");
  const int64_t span = Ts("2010-12-31") - start;
  for (size_t i = 0; i < rows; ++i) {
    double imdb = std::clamp(rng.Normal(6.3, 1.2), 1.0, 10.0);
    double rt = std::clamp(imdb * 10 + rng.Normal(0, 12), 0.0, 100.0);
    double budget = std::exp(rng.Normal(16.5, 1.4));
    double gross = budget * std::exp(rng.Normal(0.1, 1.0));
    std::vector<Value> row{
        Value::Timestamp(start + rng.UniformInt(0, span / 86400000) * 86400000),
        Value::String(kGenres[rng.Zipf(12, 1.1)]),
        Value::String(kRatings[rng.Zipf(5, 1.05)]),
        rng.NextBool(0.03) ? Value::Null() : Value::Double(std::round(imdb * 10) / 10),
        Value::Double(std::round(rt)),
        Value::Double(std::round(budget)),
        Value::Double(std::round(gross)),
    };
    builder.AppendRow(row);
  }
  Dataset ds;
  ds.name = "movies";
  ds.table = builder.Build();
  ds.quantitative = {"imdb_rating", "rt_rating", "budget", "gross"};
  ds.categorical = {"genre", "mpaa"};
  ds.temporal = {"release_date"};
  return ds;
}

Dataset MakeWeather(size_t rows, uint64_t seed) {
  static const char* kStations[] = {"KSEA", "KPDX", "KSFO", "KLAX", "KDEN", "KORD",
                                    "KATL", "KBOS", "KJFK", "KMIA", "KPHX", "KMSP",
                                    "KIAH", "KDTW", "KSLC"};
  static const char* kConditions[] = {"clear", "rain", "snow", "fog", "storm"};
  Schema schema({{"date", DataType::kTimestamp},
                 {"station", DataType::kString},
                 {"condition", DataType::kString},
                 {"temp_max", DataType::kFloat64},
                 {"temp_min", DataType::kFloat64},
                 {"precipitation", DataType::kFloat64},
                 {"wind", DataType::kFloat64}});
  TableBuilder builder(schema);
  builder.Reserve(rows);
  Rng rng(seed);
  const int64_t start = Ts("2000-01-01");
  for (size_t i = 0; i < rows; ++i) {
    int64_t day = rng.UniformInt(0, 3650);
    // Seasonal swing.
    double season = std::sin(2 * M_PI * static_cast<double>(day % 365) / 365.0);
    double tmax = 15 + 12 * season + rng.Normal(0, 5);
    double tmin = tmax - rng.Uniform(4, 14);
    double precip = rng.NextBool(0.55) ? 0.0 : std::exp(rng.Normal(0.5, 1.0));
    std::vector<Value> row{
        Value::Timestamp(start + day * 86400000),
        Value::String(kStations[rng.Zipf(15, 1.1)]),
        Value::String(kConditions[precip > 0 ? 1 + rng.Index(4) : 0]),
        Value::Double(std::round(tmax * 10) / 10),
        Value::Double(std::round(tmin * 10) / 10),
        Value::Double(std::round(precip * 10) / 10),
        Value::Double(std::round(std::fabs(rng.Normal(12, 6)))),
    };
    builder.AppendRow(row);
  }
  Dataset ds;
  ds.name = "weather";
  ds.table = builder.Build();
  ds.quantitative = {"temp_max", "temp_min", "precipitation", "wind"};
  ds.categorical = {"station", "condition"};
  ds.temporal = {"date"};
  return ds;
}

Dataset MakeTaxis(size_t rows, uint64_t seed) {
  static const char* kBoroughs[] = {"Manhattan", "Brooklyn", "Queens", "Bronx",
                                    "Staten Island", "EWR"};
  static const char* kPayments[] = {"card", "cash", "dispute", "no charge"};
  Schema schema({{"pickup_time", DataType::kTimestamp},
                 {"borough", DataType::kString},
                 {"payment", DataType::kString},
                 {"passengers", DataType::kInt64},
                 {"trip_distance", DataType::kFloat64},
                 {"fare", DataType::kFloat64},
                 {"tip", DataType::kFloat64}});
  TableBuilder builder(schema);
  builder.Reserve(rows);
  Rng rng(seed);
  const int64_t start = Ts("2015-01-01");
  for (size_t i = 0; i < rows; ++i) {
    double dist = std::exp(rng.Normal(0.9, 0.8));
    dist = std::clamp(dist, 0.2, 60.0);
    double fare = 2.5 + dist * rng.Uniform(2.2, 3.2);
    bool card = rng.NextBool(0.62);
    double tip = card ? fare * std::clamp(rng.Normal(0.18, 0.08), 0.0, 0.6) : 0.0;
    std::vector<Value> row{
        Value::Timestamp(start + rng.UniformInt(0, 365LL * 86400) * 1000),
        Value::String(kBoroughs[rng.Zipf(6, 1.6)]),
        Value::String(card ? kPayments[0] : kPayments[1 + rng.Zipf(3, 1.5)]),
        Value::Int(1 + rng.Zipf(6, 1.8)),
        Value::Double(std::round(dist * 100) / 100),
        Value::Double(std::round(fare * 100) / 100),
        Value::Double(std::round(tip * 100) / 100),
    };
    builder.AppendRow(row);
  }
  Dataset ds;
  ds.name = "taxis";
  ds.table = builder.Build();
  ds.quantitative = {"trip_distance", "fare", "tip"};
  ds.categorical = {"borough", "payment"};
  ds.temporal = {"pickup_time"};
  return ds;
}

Dataset MakeStocks(size_t rows, uint64_t seed) {
  static const char* kSymbols[] = {"AAPL", "MSFT", "GOOG", "AMZN", "IBM",  "ORCL",
                                   "INTC", "CSCO", "HPQ",  "DELL", "XOM",  "CVX",
                                   "GE",   "F",    "GM",   "JPM",  "BAC",  "WFC",
                                   "KO",   "PEP",  "WMT",  "TGT",  "PFE",  "MRK",
                                   "JNJ"};
  static const char* kSectors[] = {"tech", "energy", "industrial", "auto",
                                   "finance", "consumer", "retail", "health"};
  Schema schema({{"date", DataType::kTimestamp},
                 {"symbol", DataType::kString},
                 {"sector", DataType::kString},
                 {"open", DataType::kFloat64},
                 {"close", DataType::kFloat64},
                 {"volume", DataType::kFloat64},
                 {"ret", DataType::kFloat64}});
  TableBuilder builder(schema);
  builder.Reserve(rows);
  Rng rng(seed);
  const int64_t start = Ts("2004-01-02");
  for (size_t i = 0; i < rows; ++i) {
    size_t sym = rng.Zipf(25, 1.1);
    double open = std::exp(rng.Normal(3.8, 0.8));
    double ret = rng.Normal(0.0003, 0.02);
    double close = open * (1.0 + ret);
    std::vector<Value> row{
        Value::Timestamp(start + rng.UniformInt(0, 2518) * 86400000),
        Value::String(kSymbols[sym]),
        Value::String(kSectors[sym % 8]),
        Value::Double(std::round(open * 100) / 100),
        Value::Double(std::round(close * 100) / 100),
        Value::Double(std::round(std::exp(rng.Normal(13.5, 1.2)))),
        Value::Double(std::round(ret * 10000) / 10000),
    };
    builder.AppendRow(row);
  }
  Dataset ds;
  ds.name = "stocks";
  ds.table = builder.Build();
  ds.quantitative = {"open", "close", "volume", "ret"};
  ds.categorical = {"symbol", "sector"};
  ds.temporal = {"date"};
  return ds;
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"flights", "movies", "weather", "taxis", "stocks"};
}

Result<Dataset> MakeDataset(const std::string& name, size_t rows, uint64_t seed) {
  if (name == "flights") return MakeFlights(rows, seed);
  if (name == "movies") return MakeMovies(rows, seed);
  if (name == "weather") return MakeWeather(rows, seed);
  if (name == "taxis") return MakeTaxis(rows, seed);
  if (name == "stocks") return MakeStocks(rows, seed);
  return Status::KeyError("unknown dataset '" + name + "'");
}

}  // namespace benchdata
}  // namespace vegaplus
