// Interaction workload simulation (§6.2): sequences of signal updates drawn
// from each template's bound widgets (sliders, dropdowns, brushes, clicks).
#ifndef VEGAPLUS_BENCHDATA_WORKLOAD_H_
#define VEGAPLUS_BENCHDATA_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "runtime/plan_executor.h"
#include "spec/spec.h"

namespace vegaplus {
namespace benchdata {

/// \brief One simulated user interaction.
struct Interaction {
  std::vector<runtime::SignalUpdate> updates;
  std::string description;
};

/// \brief Draws interactions for a populated spec. Each Next() picks one
/// bound signal uniformly and synthesizes a value appropriate to its bind
/// kind (range step, select option, brushed sub-interval, click-or-clear).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const spec::VegaSpec& spec, uint64_t seed);

  /// True when the spec has at least one bound (interactive) signal.
  bool has_interactions() const { return !bound_.empty(); }

  Interaction Next();

  /// A full session: `n` interactions.
  std::vector<Interaction> Session(size_t n);

 private:
  std::vector<spec::SignalSpec> bound_;
  Rng rng_;
};

}  // namespace benchdata
}  // namespace vegaplus

#endif  // VEGAPLUS_BENCHDATA_WORKLOAD_H_
