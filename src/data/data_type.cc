#include "data/data_type.h"

namespace vegaplus {
namespace data {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "null";
    case DataType::kBool: return "bool";
    case DataType::kInt64: return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kString: return "string";
    case DataType::kTimestamp: return "timestamp";
  }
  return "unknown";
}

DataType DataTypeFromName(const std::string& name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int64") return DataType::kInt64;
  if (name == "float64") return DataType::kFloat64;
  if (name == "string") return DataType::kString;
  if (name == "timestamp") return DataType::kTimestamp;
  return DataType::kNull;
}

}  // namespace data
}  // namespace vegaplus
