#include "data/column.h"

#include <algorithm>
#include <cmath>

namespace vegaplus {
namespace data {

double Column::NumericAt(size_t i) const {
  if (IsNull(i)) return std::nan("");
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(store_->ints[offset_ + i]);
    case DataType::kFloat64:
      return store_->doubles[offset_ + i];
    default:
      return std::nan("");
  }
}

Value Column::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kNull: return Value::Null();
    case DataType::kBool: return Value::Bool(store_->ints[offset_ + i] != 0);
    case DataType::kInt64: return Value::Int(store_->ints[offset_ + i]);
    case DataType::kTimestamp: return Value::Timestamp(store_->ints[offset_ + i]);
    case DataType::kFloat64: return Value::Double(store_->doubles[offset_ + i]);
    case DataType::kString: return Value::String(store_->strings[offset_ + i]);
  }
  return Value::Null();
}

void Column::EnsureMutable() {
  if (store_.use_count() == 1 && offset_ == 0 &&
      length_ == store_->validity.size()) {
    return;
  }
  auto fresh = std::make_shared<Storage>();
  const size_t begin = offset_;
  const size_t end = offset_ + length_;
  fresh->validity.assign(store_->validity.begin() + begin,
                         store_->validity.begin() + end);
  if (!store_->ints.empty()) {
    fresh->ints.assign(store_->ints.begin() + begin, store_->ints.begin() + end);
  }
  if (!store_->doubles.empty()) {
    fresh->doubles.assign(store_->doubles.begin() + begin,
                          store_->doubles.begin() + end);
  }
  if (!store_->strings.empty()) {
    fresh->strings.assign(store_->strings.begin() + begin,
                          store_->strings.begin() + end);
  }
  store_ = std::move(fresh);
  offset_ = 0;
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool:
      if (v.is_bool() || v.is_numeric()) {
        AppendBool(v.AsDouble() != 0.0);
      } else {
        AppendNull();
      }
      return;
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (v.is_numeric() || v.is_bool()) {
        AppendInt(static_cast<int64_t>(v.AsDouble()));
      } else {
        AppendNull();
      }
      return;
    case DataType::kFloat64:
      if (v.is_numeric() || v.is_bool()) {
        AppendDouble(v.AsDouble());
      } else {
        AppendNull();
      }
      return;
    case DataType::kString:
      if (v.is_string()) {
        AppendString(v.AsString());
      } else {
        AppendString(v.ToString());
      }
      return;
    case DataType::kNull:
      AppendNull();
      return;
  }
}

void Column::AppendNull() {
  EnsureMutable();
  store_->validity.push_back(0);
  ++null_count_;
  ++length_;
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
      store_->ints.push_back(0);
      break;
    case DataType::kFloat64:
      store_->doubles.push_back(0.0);
      break;
    case DataType::kString:
      store_->strings.emplace_back();
      break;
    case DataType::kNull:
      store_->ints.push_back(0);
      break;
  }
}

void Column::AppendBool(bool v) {
  VP_DCHECK(type_ == DataType::kBool);
  EnsureMutable();
  store_->validity.push_back(1);
  store_->ints.push_back(v ? 1 : 0);
  ++length_;
}

void Column::AppendInt(int64_t v) {
  VP_DCHECK(type_ == DataType::kInt64 || type_ == DataType::kTimestamp);
  EnsureMutable();
  store_->validity.push_back(1);
  store_->ints.push_back(v);
  ++length_;
}

void Column::AppendDouble(double v) {
  VP_DCHECK(type_ == DataType::kFloat64);
  EnsureMutable();
  store_->validity.push_back(1);
  store_->doubles.push_back(v);
  ++length_;
}

void Column::AppendString(std::string v) {
  VP_DCHECK(type_ == DataType::kString);
  EnsureMutable();
  store_->validity.push_back(1);
  store_->strings.push_back(std::move(v));
  ++length_;
}

void Column::Reserve(size_t n) {
  EnsureMutable();
  store_->validity.reserve(n);
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kNull:
      store_->ints.reserve(n);
      break;
    case DataType::kFloat64:
      store_->doubles.reserve(n);
      break;
    case DataType::kString:
      store_->strings.reserve(n);
      break;
  }
}

Column Column::FromDoubles(std::vector<double> values,
                           std::vector<uint8_t> validity) {
  VP_CHECK(validity.empty() || validity.size() == values.size())
      << "validity/values length mismatch";
  Column out(DataType::kFloat64);
  Storage& s = *out.store_;
  out.length_ = values.size();
  if (validity.empty()) {
    s.validity.assign(values.size(), 1);
  } else {
    size_t nulls = 0;
    for (size_t i = 0; i < validity.size(); ++i) {
      if (validity[i] == 0) {
        ++nulls;
        values[i] = 0.0;  // normalize the storage under null cells
      } else {
        validity[i] = 1;
      }
    }
    out.null_count_ = nulls;
    s.validity = std::move(validity);
  }
  s.doubles = std::move(values);
  return out;
}

Column Column::Take(const std::vector<int32_t>& indices) const {
  // Bulk gather straight against the storage arrays: no per-element
  // mutability checks or appends on this hot path.
  Column out(type_);
  Storage& s = *out.store_;
  const size_t m = indices.size();
  out.length_ = m;
  s.validity.resize(m);
  const uint8_t* valid = store_->validity.data() + offset_;
  size_t nulls = 0;
  for (size_t j = 0; j < m; ++j) {
    const uint8_t v = valid[static_cast<size_t>(indices[j])];
    s.validity[j] = v;
    nulls += v == 0;
  }
  out.null_count_ = nulls;
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kNull: {
      s.ints.resize(m);
      const int64_t* src = store_->ints.data() + offset_;
      for (size_t j = 0; j < m; ++j) {
        s.ints[j] = src[static_cast<size_t>(indices[j])];
      }
      break;
    }
    case DataType::kFloat64: {
      s.doubles.resize(m);
      const double* src = store_->doubles.data() + offset_;
      for (size_t j = 0; j < m; ++j) {
        s.doubles[j] = src[static_cast<size_t>(indices[j])];
      }
      break;
    }
    case DataType::kString: {
      s.strings.resize(m);
      const std::string* src = store_->strings.data() + offset_;
      for (size_t j = 0; j < m; ++j) {
        if (s.validity[j]) s.strings[j] = src[static_cast<size_t>(indices[j])];
      }
      break;
    }
  }
  return out;
}

Column Column::Slice(size_t offset, size_t len) const {
  offset = std::min(offset, length_);
  len = std::min(len, length_ - offset);
  Column out(type_);
  out.store_ = store_;
  out.offset_ = offset_ + offset;
  out.length_ = len;
  size_t nulls = 0;
  if (null_count_ > 0) {
    const uint8_t* valid = store_->validity.data() + out.offset_;
    for (size_t i = 0; i < len; ++i) nulls += valid[i] == 0;
  }
  out.null_count_ = nulls;
  return out;
}

}  // namespace data
}  // namespace vegaplus
