#include "data/column.h"

#include <cmath>

namespace vegaplus {
namespace data {

double Column::NumericAt(size_t i) const {
  if (IsNull(i)) return std::nan("");
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(ints_[i]);
    case DataType::kFloat64:
      return doubles_[i];
    default:
      return std::nan("");
  }
}

Value Column::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kNull: return Value::Null();
    case DataType::kBool: return Value::Bool(ints_[i] != 0);
    case DataType::kInt64: return Value::Int(ints_[i]);
    case DataType::kTimestamp: return Value::Timestamp(ints_[i]);
    case DataType::kFloat64: return Value::Double(doubles_[i]);
    case DataType::kString: return Value::String(strings_[i]);
  }
  return Value::Null();
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool:
      if (v.is_bool() || v.is_numeric()) {
        AppendBool(v.AsDouble() != 0.0);
      } else {
        AppendNull();
      }
      return;
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (v.is_numeric() || v.is_bool()) {
        AppendInt(static_cast<int64_t>(v.AsDouble()));
      } else {
        AppendNull();
      }
      return;
    case DataType::kFloat64:
      if (v.is_numeric() || v.is_bool()) {
        AppendDouble(v.AsDouble());
      } else {
        AppendNull();
      }
      return;
    case DataType::kString:
      if (v.is_string()) {
        AppendString(v.AsString());
      } else {
        AppendString(v.ToString());
      }
      return;
    case DataType::kNull:
      AppendNull();
      return;
  }
}

void Column::AppendNull() {
  validity_.push_back(0);
  ++null_count_;
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
      ints_.push_back(0);
      break;
    case DataType::kFloat64:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kNull:
      ints_.push_back(0);
      break;
  }
}

void Column::AppendBool(bool v) {
  VP_DCHECK(type_ == DataType::kBool);
  validity_.push_back(1);
  ints_.push_back(v ? 1 : 0);
}

void Column::AppendInt(int64_t v) {
  VP_DCHECK(type_ == DataType::kInt64 || type_ == DataType::kTimestamp);
  validity_.push_back(1);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  VP_DCHECK(type_ == DataType::kFloat64);
  validity_.push_back(1);
  doubles_.push_back(v);
}

void Column::AppendString(std::string v) {
  VP_DCHECK(type_ == DataType::kString);
  validity_.push_back(1);
  strings_.push_back(std::move(v));
}

void Column::Reserve(size_t n) {
  validity_.reserve(n);
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kNull:
      ints_.reserve(n);
      break;
    case DataType::kFloat64:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

Column Column::Take(const std::vector<int32_t>& indices) const {
  Column out(type_);
  out.Reserve(indices.size());
  for (int32_t idx : indices) {
    size_t i = static_cast<size_t>(idx);
    if (IsNull(i)) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kBool:
        out.AppendBool(ints_[i] != 0);
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
        out.AppendInt(ints_[i]);
        break;
      case DataType::kFloat64:
        out.AppendDouble(doubles_[i]);
        break;
      case DataType::kString:
        out.AppendString(strings_[i]);
        break;
      case DataType::kNull:
        out.AppendNull();
        break;
    }
  }
  return out;
}

}  // namespace data
}  // namespace vegaplus
