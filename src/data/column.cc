#include "data/column.h"

#include "expr/kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace vegaplus {
namespace data {

namespace {

std::atomic<bool> g_dict_encoding_enabled{true};

}  // namespace

bool DictionaryEncodingEnabled() {
  return g_dict_encoding_enabled.load(std::memory_order_relaxed);
}

void SetDictionaryEncodingEnabled(bool enabled) {
  g_dict_encoding_enabled.store(enabled, std::memory_order_relaxed);
}

double Column::NumericAt(size_t i) const {
  if (IsNull(i)) return std::nan("");
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(store_->ints[offset_ + i]);
    case DataType::kFloat64:
      return store_->doubles[offset_ + i];
    default:
      return std::nan("");
  }
}

Value Column::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kNull: return Value::Null();
    case DataType::kBool: return Value::Bool(store_->ints[offset_ + i] != 0);
    case DataType::kInt64: return Value::Int(store_->ints[offset_ + i]);
    case DataType::kTimestamp: return Value::Timestamp(store_->ints[offset_ + i]);
    case DataType::kFloat64: return Value::Double(store_->doubles[offset_ + i]);
    case DataType::kString: return Value::String(StringAt(i));
  }
  return Value::Null();
}

void Column::EnsureMutable() {
  if (store_.use_count() == 1 && offset_ == 0 &&
      length_ == store_->validity.size()) {
    return;
  }
  auto fresh = std::make_shared<Storage>();
  const size_t begin = offset_;
  const size_t end = offset_ + length_;
  fresh->validity.assign(store_->validity.begin() + begin,
                         store_->validity.begin() + end);
  if (!store_->ints.empty()) {
    fresh->ints.assign(store_->ints.begin() + begin, store_->ints.begin() + end);
  }
  if (!store_->doubles.empty()) {
    fresh->doubles.assign(store_->doubles.begin() + begin,
                          store_->doubles.begin() + end);
  }
  if (!store_->strings.empty()) {
    fresh->strings.assign(store_->strings.begin() + begin,
                          store_->strings.begin() + end);
  }
  if (store_->dict != nullptr) {
    // Codes copy per column; the dictionary itself stays shared (appends of
    // new unique strings clone it first, see DictCode).
    fresh->dict = store_->dict;
    fresh->codes.assign(store_->codes.begin() + begin,
                        store_->codes.begin() + end);
  }
  store_ = std::move(fresh);
  offset_ = 0;
}

int32_t Column::DictCode(std::string v) {
  std::shared_ptr<StringDictionary>& dict = store_->dict;
  const int32_t found = dict->Find(v);
  if (found >= 0) return found;
  if (dict.use_count() > 1) {
    // The dictionary is shared with sibling columns (Take/Slice results) or
    // live registers; clone before adding so their view never changes.
    dict = std::make_shared<StringDictionary>(*dict);
  }
  return dict->Intern(std::move(v));
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool:
      if (v.is_bool() || v.is_numeric()) {
        AppendBool(v.AsDouble() != 0.0);
      } else {
        AppendNull();
      }
      return;
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (v.is_numeric() || v.is_bool()) {
        AppendInt(static_cast<int64_t>(v.AsDouble()));
      } else {
        AppendNull();
      }
      return;
    case DataType::kFloat64:
      if (v.is_numeric() || v.is_bool()) {
        AppendDouble(v.AsDouble());
      } else {
        AppendNull();
      }
      return;
    case DataType::kString:
      if (v.is_string()) {
        AppendString(v.AsString());
      } else {
        AppendString(v.ToString());
      }
      return;
    case DataType::kNull:
      AppendNull();
      return;
  }
}

void Column::AppendNull() {
  EnsureMutable();
  store_->validity.push_back(0);
  ++null_count_;
  ++length_;
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
      store_->ints.push_back(0);
      break;
    case DataType::kFloat64:
      store_->doubles.push_back(0.0);
      break;
    case DataType::kString:
      // An empty string column commits to a form at its first append.
      if (store_->dict == nullptr && length_ == 1 && DictionaryEncodingEnabled()) {
        store_->dict = std::make_shared<StringDictionary>();
      }
      if (store_->dict != nullptr) {
        store_->codes.push_back(-1);
      } else {
        store_->strings.emplace_back();
      }
      break;
    case DataType::kNull:
      store_->ints.push_back(0);
      break;
  }
}

void Column::AppendBool(bool v) {
  VP_DCHECK(type_ == DataType::kBool);
  EnsureMutable();
  store_->validity.push_back(1);
  store_->ints.push_back(v ? 1 : 0);
  ++length_;
}

void Column::AppendInt(int64_t v) {
  VP_DCHECK(type_ == DataType::kInt64 || type_ == DataType::kTimestamp);
  EnsureMutable();
  store_->validity.push_back(1);
  store_->ints.push_back(v);
  ++length_;
}

void Column::AppendDouble(double v) {
  VP_DCHECK(type_ == DataType::kFloat64);
  EnsureMutable();
  store_->validity.push_back(1);
  store_->doubles.push_back(v);
  ++length_;
}

void Column::AppendString(std::string v) {
  VP_DCHECK(type_ == DataType::kString);
  EnsureMutable();
  store_->validity.push_back(1);
  ++length_;
  // An empty string column commits to a form at its first append.
  if (store_->dict == nullptr && length_ == 1 && DictionaryEncodingEnabled()) {
    store_->dict = std::make_shared<StringDictionary>();
  }
  if (store_->dict != nullptr) {
    store_->codes.push_back(DictCode(std::move(v)));
  } else {
    store_->strings.push_back(std::move(v));
  }
}

void Column::Reserve(size_t n) {
  EnsureMutable();
  store_->validity.reserve(n);
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kNull:
      store_->ints.reserve(n);
      break;
    case DataType::kFloat64:
      store_->doubles.reserve(n);
      break;
    case DataType::kString:
      if (store_->dict != nullptr ||
          (length_ == 0 && DictionaryEncodingEnabled())) {
        store_->codes.reserve(n);
      } else {
        store_->strings.reserve(n);
      }
      break;
  }
}

Column Column::FromDoubles(std::vector<double> values,
                           std::vector<uint8_t> validity) {
  VP_CHECK(validity.empty() || validity.size() == values.size())
      << "validity/values length mismatch";
  Column out(DataType::kFloat64);
  Storage& s = *out.store_;
  out.length_ = values.size();
  if (validity.empty()) {
    s.validity.assign(values.size(), 1);
  } else {
    size_t nulls = 0;
    for (size_t i = 0; i < validity.size(); ++i) {
      if (validity[i] == 0) {
        ++nulls;
        values[i] = 0.0;  // normalize the storage under null cells
      } else {
        validity[i] = 1;
      }
    }
    out.null_count_ = nulls;
    s.validity = std::move(validity);
  }
  s.doubles = std::move(values);
  return out;
}

Column Column::FromStrings(std::vector<std::string> values,
                           std::vector<uint8_t> validity) {
  VP_CHECK(validity.empty() || validity.size() == values.size())
      << "validity/values length mismatch";
  Column out(DataType::kString);
  Storage& s = *out.store_;
  out.length_ = values.size();
  if (validity.empty()) {
    s.validity.assign(values.size(), 1);
  } else {
    size_t nulls = 0;
    for (size_t i = 0; i < validity.size(); ++i) {
      if (validity[i] == 0) {
        ++nulls;
        values[i].clear();  // normalize the storage under null cells
      } else {
        validity[i] = 1;
      }
    }
    out.null_count_ = nulls;
    s.validity = std::move(validity);
  }
  s.strings = std::move(values);
  return out;
}

Column Column::FromDictionary(DictPtr dict, std::vector<int32_t> codes) {
  VP_CHECK(dict != nullptr) << "FromDictionary: null dictionary";
  Column out(DataType::kString);
  Storage& s = *out.store_;
  out.length_ = codes.size();
  s.validity.resize(codes.size());
  size_t nulls = 0;
  for (size_t i = 0; i < codes.size(); ++i) {
    VP_DCHECK(codes[i] >= -1 &&
              codes[i] < static_cast<int32_t>(dict->values.size()))
        << "FromDictionary: code out of range";
    const bool valid = codes[i] >= 0;
    s.validity[i] = valid ? 1 : 0;
    nulls += valid ? 0 : 1;
  }
  out.null_count_ = nulls;
  // Dictionaries are created mutable by columns and only ever mutated under
  // the copy-on-write rule in DictCode, so adopting a shared const view is
  // safe: any later new-string append sees use_count > 1 and clones.
  s.dict = std::const_pointer_cast<StringDictionary>(std::move(dict));
  s.codes = std::move(codes);
  return out;
}

Column Column::EncodeDictionary() const {
  if (type_ != DataType::kString || dict_encoded()) return *this;
  auto dict = std::make_shared<StringDictionary>();
  std::vector<int32_t> codes(length_);
  const std::string* src = store_->strings.data() + offset_;
  const uint8_t* valid = store_->validity.data() + offset_;
  for (size_t i = 0; i < length_; ++i) {
    codes[i] = valid[i] == 0 ? -1 : dict->Intern(src[i]);
  }
  return FromDictionary(std::move(dict), std::move(codes));
}

Column Column::DecodeFlat() const {
  if (type_ != DataType::kString || !dict_encoded()) return *this;
  std::vector<std::string> values(length_);
  std::vector<uint8_t> validity(length_);
  const int32_t* codes = codes_data();
  const std::vector<std::string>& dict = store_->dict->values;
  for (size_t i = 0; i < length_; ++i) {
    if (codes[i] >= 0) {
      values[i] = dict[static_cast<size_t>(codes[i])];
      validity[i] = 1;
    }
  }
  return FromStrings(std::move(values), std::move(validity));
}

Column Column::Take(const std::vector<int32_t>& indices) const {
  // Bulk gather straight against the storage arrays: no per-element
  // mutability checks or appends on this hot path.
  Column out(type_);
  Storage& s = *out.store_;
  const size_t m = indices.size();
  out.length_ = m;
  s.validity.resize(m);
  const uint8_t* valid = store_->validity.data() + offset_;
  out.null_count_ =
      kernels::GatherValidity(valid, indices.data(), m, s.validity.data());
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kNull: {
      s.ints.resize(m);
      kernels::GatherInt64(store_->ints.data() + offset_, indices.data(),
                                 m, s.ints.data());
      break;
    }
    case DataType::kFloat64: {
      s.doubles.resize(m);
      kernels::GatherDoubles(store_->doubles.data() + offset_,
                                   indices.data(), m, s.doubles.data());
      break;
    }
    case DataType::kString: {
      if (store_->dict != nullptr) {
        // Integer gather + shared dictionary: no strings touched at all.
        s.dict = store_->dict;
        s.codes.resize(m);
        kernels::GatherCodes(store_->codes.data() + offset_,
                                   indices.data(), m, s.codes.data());
        break;
      }
      s.strings.resize(m);
      const std::string* src = store_->strings.data() + offset_;
      for (size_t j = 0; j < m; ++j) {
        if (s.validity[j]) s.strings[j] = src[static_cast<size_t>(indices[j])];
      }
      break;
    }
  }
  return out;
}

Column Column::Slice(size_t offset, size_t len) const {
  offset = std::min(offset, length_);
  len = std::min(len, length_ - offset);
  Column out(type_);
  out.store_ = store_;
  out.offset_ = offset_ + offset;
  out.length_ = len;
  size_t nulls = 0;
  if (null_count_ > 0) {
    const uint8_t* valid = store_->validity.data() + out.offset_;
    for (size_t i = 0; i < len; ++i) nulls += valid[i] == 0;
  }
  out.null_count_ = nulls;
  return out;
}

std::shared_ptr<std::vector<double>> Column::shared_doubles() const {
  if (!FullRange() || store_->doubles.size() != length_) return nullptr;
  return std::shared_ptr<std::vector<double>>(store_, &store_->doubles);
}

std::shared_ptr<std::vector<uint8_t>> Column::shared_validity() const {
  if (!FullRange()) return nullptr;
  return std::shared_ptr<std::vector<uint8_t>>(store_, &store_->validity);
}

std::shared_ptr<std::vector<int32_t>> Column::shared_codes() const {
  if (!FullRange() || store_->codes.size() != length_) return nullptr;
  return std::shared_ptr<std::vector<int32_t>>(store_, &store_->codes);
}

}  // namespace data
}  // namespace vegaplus
