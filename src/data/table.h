// Table: immutable-ish columnar relation = Schema + Columns. Tables are
// passed by shared_ptr<const Table> through the dataflow and SQL engines.
#ifndef VEGAPLUS_DATA_TABLE_H_
#define VEGAPLUS_DATA_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/column.h"
#include "data/schema.h"

namespace vegaplus {
namespace data {

class Table;
using TablePtr = std::shared_ptr<const Table>;

/// \brief A named-column relation.
class Table {
 public:
  Table() = default;
  Table(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Column by name; nullptr if absent.
  const Column* ColumnByName(const std::string& name) const;

  /// Cell access by row + field name; Null for unknown fields.
  Value ValueAt(size_t row, const std::string& name) const;
  Value ValueAt(size_t row, size_t col) const { return columns_[col].ValueAt(row); }

  /// Gather rows (in `indices` order) into a new table.
  TablePtr Take(const std::vector<int32_t>& indices) const;

  /// Zero-copy view of rows [offset, offset + len): the sliced columns share
  /// cell storage with this table (clamped to the table bounds).
  TablePtr Slice(size_t offset, size_t len) const;

  /// First `n` rows (zero-copy).
  TablePtr Head(size_t n) const;

  /// Human-readable preview (up to `max_rows` rows) for examples/debugging.
  std::string ToString(size_t max_rows = 10) const;

  /// Structural equality (schema + every cell).
  bool Equals(const Table& other) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// \brief Row-wise table construction against a fixed schema.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Append one row; `values` must have one entry per schema field.
  void AppendRow(const std::vector<Value>& values);

  /// Direct access to column `i` for fast typed appends. All columns must be
  /// kept the same length by the caller when using this path.
  Column* column(size_t i) { return &columns_[i]; }

  void Reserve(size_t n);

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].length(); }

  /// Finish; the builder is left empty.
  TablePtr Build();

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

/// Convenience: build a table from a schema and rows of Values.
TablePtr MakeTable(Schema schema, const std::vector<std::vector<Value>>& rows);

/// Empty table with the given schema.
TablePtr EmptyTable(Schema schema);

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_TABLE_H_
