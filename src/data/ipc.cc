#include "data/ipc.h"

#include <cmath>
#include <cstring>

#include "common/str_util.h"
#include "json/json_parser.h"
#include "json/json_writer.h"

namespace vegaplus {
namespace data {

namespace {

// Bumped to 2 when string columns gained the per-column encoding tag
// (dictionary vs flat): an old-format payload is rejected cleanly at the
// magic check instead of misparsing the tag byte.
constexpr char kMagic[4] = {'V', 'P', 'T', '2'};

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetString(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len;
  if (!GetU32(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

json::Value TableToJson(const Table& table) {
  json::Value rows = json::Value::MakeArray();
  rows.array().reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    json::Value row = json::Value::MakeObject();
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.IsNull(r)) continue;
      const std::string& name = table.schema().field(c).name;
      switch (col.type()) {
        case DataType::kBool:
          row.Set(name, json::Value(col.BoolAt(r)));
          break;
        case DataType::kInt64:
        case DataType::kTimestamp:
          row.Set(name, json::Value(static_cast<double>(col.IntAt(r))));
          break;
        case DataType::kFloat64:
          row.Set(name, json::Value(col.DoubleAt(r)));
          break;
        case DataType::kString:
          row.Set(name, json::Value(col.StringAt(r)));
          break;
        case DataType::kNull:
          break;
      }
    }
    rows.Append(std::move(row));
  }
  return rows;
}

std::string SerializeJsonRows(const Table& table) {
  return json::Write(TableToJson(table));
}

Result<TablePtr> JsonToTable(const json::Value& rows) {
  if (!rows.is_array()) return Status::TypeError("JsonToTable: expected array");
  // Infer schema: union of keys (in first-seen order); number columns are
  // int64 if all values integral, else float64.
  std::vector<std::string> names;
  std::vector<DataType> types;
  auto find_col = [&](const std::string& name) -> int {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  for (const json::Value& row : rows.array()) {
    if (!row.is_object()) return Status::TypeError("JsonToTable: expected row objects");
    for (const auto& [key, cell] : row.members()) {
      int idx = find_col(key);
      DataType t = DataType::kNull;
      switch (cell.type()) {
        case json::Type::kBool: t = DataType::kBool; break;
        case json::Type::kNumber:
          t = (cell.AsDouble() == std::floor(cell.AsDouble()) &&
               std::fabs(cell.AsDouble()) < 9.0e15)
                  ? DataType::kInt64
                  : DataType::kFloat64;
          break;
        case json::Type::kString: t = DataType::kString; break;
        default: t = DataType::kNull; break;
      }
      if (idx < 0) {
        names.push_back(key);
        types.push_back(t);
      } else if (types[static_cast<size_t>(idx)] != t && t != DataType::kNull) {
        DataType& cur = types[static_cast<size_t>(idx)];
        if (cur == DataType::kNull) {
          cur = t;
        } else if ((cur == DataType::kInt64 && t == DataType::kFloat64) ||
                   (cur == DataType::kFloat64 && t == DataType::kInt64)) {
          cur = DataType::kFloat64;
        } else if (cur != t) {
          cur = DataType::kString;
        }
      }
    }
  }
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    fields.push_back({names[i], types[i] == DataType::kNull ? DataType::kString : types[i]});
  }
  TableBuilder builder((Schema(fields)));
  builder.Reserve(rows.size());
  for (const json::Value& row : rows.array()) {
    std::vector<Value> values(fields.size(), Value::Null());
    for (const auto& [key, cell] : row.members()) {
      int idx = find_col(key);
      if (idx < 0) continue;
      switch (cell.type()) {
        case json::Type::kBool: values[static_cast<size_t>(idx)] = Value::Bool(cell.AsBool()); break;
        case json::Type::kNumber:
          if (fields[static_cast<size_t>(idx)].type == DataType::kInt64) {
            values[static_cast<size_t>(idx)] = Value::Int(cell.AsInt());
          } else {
            values[static_cast<size_t>(idx)] = Value::Double(cell.AsDouble());
          }
          break;
        case json::Type::kString: values[static_cast<size_t>(idx)] = Value::String(cell.AsString()); break;
        default: break;
      }
    }
    builder.AppendRow(values);
  }
  return builder.Build();
}

Result<TablePtr> DeserializeJsonRows(const std::string& text) {
  VP_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  return JsonToTable(doc);
}

std::string SerializeBinary(const Table& table) {
  std::string out;
  out.append(kMagic, 4);
  PutU32(&out, static_cast<uint32_t>(table.num_columns()));
  PutU64(&out, table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema().field(c);
    PutString(&out, f.name);
    out.push_back(static_cast<char>(f.type));
  }
  const size_t n = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    // Validity bitmap, packed.
    std::string bitmap((n + 7) / 8, '\0');
    for (size_t r = 0; r < n; ++r) {
      if (!col.IsNull(r)) bitmap[r / 8] |= static_cast<char>(1u << (r % 8));
    }
    PutString(&out, bitmap);
    switch (col.type()) {
      case DataType::kBool: {
        std::string bits((n + 7) / 8, '\0');
        for (size_t r = 0; r < n; ++r) {
          if (!col.IsNull(r) && col.BoolAt(r)) bits[r / 8] |= static_cast<char>(1u << (r % 8));
        }
        PutString(&out, bits);
        break;
      }
      case DataType::kInt64:
      case DataType::kTimestamp: {
        PutU64(&out, n * 8);
        out.append(reinterpret_cast<const char*>(col.ints_data()), n * 8);
        break;
      }
      case DataType::kFloat64: {
        PutU64(&out, n * 8);
        out.append(reinterpret_cast<const char*>(col.doubles_data()), n * 8);
        break;
      }
      case DataType::kString: {
        // One encoding tag per string column: 1 = dictionary (unique strings
        // once + int32 codes per row), 0 = flat (offsets + concatenated
        // bytes). Low-cardinality columns shrink to roughly
        // 4 bytes/row + the dictionary.
        if (col.dict_encoded()) {
          out.push_back(1);
          // Compact to the referenced entries: filtered/sliced results share
          // their source's full dictionary, and shipping unreferenced
          // strings would blow a 10-row response up to the base table's
          // cardinality. Codes are remapped in first-use order.
          const std::vector<std::string>& dict = col.dict().values;
          const int32_t* codes = col.codes_data();
          std::vector<int32_t> new_of_old(dict.size(), -1);
          std::vector<uint32_t> used;  // old codes, in first-use order
          std::vector<int32_t> remapped(n);
          for (size_t r = 0; r < n; ++r) {
            const int32_t c = codes[r];
            if (c < 0) {
              remapped[r] = -1;
              continue;
            }
            int32_t& nc = new_of_old[static_cast<size_t>(c)];
            if (nc < 0) {
              nc = static_cast<int32_t>(used.size());
              used.push_back(static_cast<uint32_t>(c));
            }
            remapped[r] = nc;
          }
          PutU32(&out, static_cast<uint32_t>(used.size()));
          std::string bytes;
          std::vector<uint32_t> offsets;
          offsets.reserve(used.size() + 1);
          offsets.push_back(0);
          for (uint32_t old_code : used) {
            bytes.append(dict[old_code]);
            offsets.push_back(static_cast<uint32_t>(bytes.size()));
          }
          PutU64(&out, offsets.size() * 4);
          out.append(reinterpret_cast<const char*>(offsets.data()),
                     offsets.size() * 4);
          PutString(&out, bytes);
          PutU64(&out, n * 4);
          out.append(reinterpret_cast<const char*>(remapped.data()), n * 4);
          break;
        }
        out.push_back(0);
        std::string bytes;
        std::vector<uint32_t> offsets;
        offsets.reserve(n + 1);
        offsets.push_back(0);
        for (size_t r = 0; r < n; ++r) {
          if (!col.IsNull(r)) bytes.append(col.StringAt(r));
          offsets.push_back(static_cast<uint32_t>(bytes.size()));
        }
        PutU64(&out, offsets.size() * 4);
        out.append(reinterpret_cast<const char*>(offsets.data()), offsets.size() * 4);
        PutString(&out, bytes);
        break;
      }
      case DataType::kNull:
        break;
    }
  }
  return out;
}

Result<TablePtr> DeserializeBinary(std::string_view buffer) {
  size_t pos = 0;
  if (buffer.size() < 4 || std::memcmp(buffer.data(), kMagic, 4) != 0) {
    return Status::ParseError("binary table: bad magic");
  }
  pos = 4;
  uint32_t num_cols;
  uint64_t num_rows;
  if (!GetU32(buffer, &pos, &num_cols) || !GetU64(buffer, &pos, &num_rows)) {
    return Status::ParseError("binary table: truncated header");
  }
  std::vector<Field> fields(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    if (!GetString(buffer, &pos, &fields[c].name) || pos >= buffer.size()) {
      return Status::ParseError("binary table: truncated schema");
    }
    fields[c].type = static_cast<DataType>(buffer[pos++]);
  }
  const size_t n = static_cast<size_t>(num_rows);
  std::vector<Column> columns;
  columns.reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    Column col(fields[c].type);
    col.Reserve(n);
    std::string bitmap;
    if (!GetString(buffer, &pos, &bitmap) || bitmap.size() < (n + 7) / 8) {
      return Status::ParseError("binary table: truncated validity");
    }
    auto is_valid = [&](size_t r) {
      return (bitmap[r / 8] >> (r % 8)) & 1;
    };
    switch (fields[c].type) {
      case DataType::kBool: {
        std::string bits;
        if (!GetString(buffer, &pos, &bits)) return Status::ParseError("truncated bools");
        for (size_t r = 0; r < n; ++r) {
          if (!is_valid(r)) {
            col.AppendNull();
          } else {
            col.AppendBool((bits[r / 8] >> (r % 8)) & 1);
          }
        }
        break;
      }
      case DataType::kInt64:
      case DataType::kTimestamp: {
        uint64_t len;
        if (!GetU64(buffer, &pos, &len) || pos + len > buffer.size() || len != n * 8) {
          return Status::ParseError("truncated ints");
        }
        for (size_t r = 0; r < n; ++r) {
          int64_t v;
          std::memcpy(&v, buffer.data() + pos + r * 8, 8);
          if (!is_valid(r)) {
            col.AppendNull();
          } else {
            col.AppendInt(v);
          }
        }
        pos += len;
        break;
      }
      case DataType::kFloat64: {
        uint64_t len;
        if (!GetU64(buffer, &pos, &len) || pos + len > buffer.size() || len != n * 8) {
          return Status::ParseError("truncated doubles");
        }
        for (size_t r = 0; r < n; ++r) {
          double v;
          std::memcpy(&v, buffer.data() + pos + r * 8, 8);
          if (!is_valid(r)) {
            col.AppendNull();
          } else {
            col.AppendDouble(v);
          }
        }
        pos += len;
        break;
      }
      case DataType::kString: {
        if (pos >= buffer.size()) return Status::ParseError("truncated encoding tag");
        const uint8_t encoding = static_cast<uint8_t>(buffer[pos++]);
        if (encoding == 1) {
          // Dictionary form: unique strings, then int32 codes per row. The
          // column is reconstructed dictionary-encoded regardless of the
          // kill switch (the payload dictates the physical form).
          uint32_t dict_size;
          if (!GetU32(buffer, &pos, &dict_size)) {
            return Status::ParseError("truncated dictionary size");
          }
          uint64_t len;
          if (!GetU64(buffer, &pos, &len) || pos + len > buffer.size() ||
              len != (static_cast<uint64_t>(dict_size) + 1) * 4) {
            return Status::ParseError("truncated dictionary offsets");
          }
          std::vector<uint32_t> offsets(dict_size + 1);
          std::memcpy(offsets.data(), buffer.data() + pos, len);
          pos += len;
          std::string bytes;
          if (!GetString(buffer, &pos, &bytes)) {
            return Status::ParseError("truncated dictionary bytes");
          }
          auto dict = std::make_shared<StringDictionary>();
          dict->values.reserve(dict_size);
          for (uint32_t d = 0; d < dict_size; ++d) {
            if (offsets[d] > offsets[d + 1] || offsets[d + 1] > bytes.size()) {
              return Status::ParseError("bad dictionary offsets");
            }
            dict->Intern(bytes.substr(offsets[d], offsets[d + 1] - offsets[d]));
          }
          if (dict->values.size() != dict_size) {
            return Status::ParseError("duplicate dictionary entries");
          }
          if (!GetU64(buffer, &pos, &len) || pos + len > buffer.size() ||
              len != n * 4) {
            return Status::ParseError("truncated codes");
          }
          std::vector<int32_t> codes(n);
          std::memcpy(codes.data(), buffer.data() + pos, len);
          pos += len;
          for (size_t r = 0; r < n; ++r) {
            const bool valid = is_valid(r);
            if (valid != (codes[r] >= 0) ||
                codes[r] >= static_cast<int32_t>(dict_size)) {
              return Status::ParseError("code/validity mismatch");
            }
          }
          col = Column::FromDictionary(std::move(dict), std::move(codes));
          break;
        }
        if (encoding != 0) return Status::ParseError("unknown string encoding");
        uint64_t len;
        if (!GetU64(buffer, &pos, &len) || pos + len > buffer.size() ||
            len != (n + 1) * 4) {
          return Status::ParseError("truncated offsets");
        }
        std::vector<uint32_t> offsets(n + 1);
        std::memcpy(offsets.data(), buffer.data() + pos, len);
        pos += len;
        std::string bytes;
        if (!GetString(buffer, &pos, &bytes)) return Status::ParseError("truncated strings");
        // Rebuild flat (the payload dictates the form, not the switch).
        std::vector<std::string> values(n);
        std::vector<uint8_t> validity(n);
        for (size_t r = 0; r < n; ++r) {
          if (is_valid(r)) {
            validity[r] = 1;
            values[r].assign(bytes, offsets[r], offsets[r + 1] - offsets[r]);
          }
        }
        col = Column::FromStrings(std::move(values), std::move(validity));
        break;
      }
      case DataType::kNull: {
        for (size_t r = 0; r < n; ++r) col.AppendNull();
        break;
      }
    }
    columns.push_back(std::move(col));
  }
  return TablePtr(std::make_shared<Table>(Schema(std::move(fields)), std::move(columns)));
}

std::string SerializeEnvelope(const std::string& kind, const std::string& meta,
                              const Table& table) {
  std::string out;
  out.append("VPE1", 4);
  PutString(&out, kind);
  PutString(&out, meta);
  std::string body = SerializeBinary(table);
  PutU64(&out, body.size());
  out.append(body);
  return out;
}

Result<Envelope> DeserializeEnvelope(std::string_view buffer) {
  if (buffer.size() < 4 || buffer.compare(0, 4, "VPE1") != 0) {
    return Status::InvalidArgument("ipc: bad envelope magic");
  }
  size_t pos = 4;
  Envelope env;
  if (!GetString(buffer, &pos, &env.kind) ||
      !GetString(buffer, &pos, &env.meta)) {
    return Status::InvalidArgument("ipc: truncated envelope header");
  }
  uint64_t body_size;
  if (!GetU64(buffer, &pos, &body_size) || pos + body_size > buffer.size()) {
    return Status::InvalidArgument("ipc: truncated envelope body");
  }
  VP_ASSIGN_OR_RETURN(env.table, DeserializeBinary(buffer.substr(pos, body_size)));
  return env;
}

}  // namespace data
}  // namespace vegaplus
