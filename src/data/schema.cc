#include "data/schema.h"

#include "common/str_util.h"

namespace vegaplus {
namespace data {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    // First occurrence wins on duplicate names (matches SQL output behaviour
    // where later duplicates are only addressable positionally).
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace data
}  // namespace vegaplus
