// Logical column types of the table substrate.
#ifndef VEGAPLUS_DATA_DATA_TYPE_H_
#define VEGAPLUS_DATA_DATA_TYPE_H_

#include <string>

namespace vegaplus {
namespace data {

/// Column/value types. kTimestamp is stored as int64 milliseconds since the
/// Unix epoch (UTC) but is a distinct logical type so the timeunit transform
/// and date functions can recognize temporal fields.
enum class DataType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kString = 4,
  kTimestamp = 5,
};

/// Lowercase type name ("int64", "float64", ...).
const char* DataTypeName(DataType t);

/// Inverse of DataTypeName; returns kNull for unknown names.
DataType DataTypeFromName(const std::string& name);

/// True for kInt64 / kFloat64 / kTimestamp (types with a numeric order).
inline bool IsNumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64 || t == DataType::kTimestamp;
}

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_DATA_TYPE_H_
