// Per-column statistics: the inputs to the SQL engine's EXPLAIN-style
// cardinality/cost estimator and to the workload simulator (which needs
// field extents and categorical domains to synthesize interaction params).
#ifndef VEGAPLUS_DATA_STATS_H_
#define VEGAPLUS_DATA_STATS_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace vegaplus {
namespace data {

struct ColumnStats {
  std::string name;
  DataType type = DataType::kNull;
  size_t null_count = 0;
  /// Exact up to kMaxTrackedDistinct distinct values, then capped.
  size_t distinct_count = 0;
  bool distinct_is_exact = true;
  /// Numeric extent (NaN when the column has no numeric values).
  double min = 0.0;
  double max = 0.0;
  bool has_extent = false;
  /// Distinct values in first-seen order when distinct_is_exact
  /// (the categorical domain used for dropdowns/click filters).
  std::vector<Value> domain;
};

struct TableStats {
  size_t num_rows = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats* Find(const std::string& name) const {
    for (const auto& c : columns) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
};

/// Distinct-tracking cutoff; beyond this the domain is dropped and
/// distinct_count becomes a floor estimate.
inline constexpr size_t kMaxTrackedDistinct = 256;

/// Compute stats with a full scan of `table`.
TableStats ComputeTableStats(const Table& table);

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_STATS_H_
