// Result-set serialization: the two wire encodings VegaPlus chooses between
// when shipping query results from the DBMS/middleware to the client.
//
//  * JSON rows  — the default HTTP connector encoding in the paper: an array
//    of objects. Large and requires client-side decoding.
//  * Columnar binary ("Arrow format" stand-in) — schema header + contiguous
//    per-column buffers, dramatically smaller and cheaper to decode.
//
// Both produce real byte strings; the network simulator charges transfer and
// decode cost from the actual encoded sizes.
#ifndef VEGAPLUS_DATA_IPC_H_
#define VEGAPLUS_DATA_IPC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "data/table.h"
#include "json/json_value.h"

namespace vegaplus {
namespace data {

// ---- JSON rows encoding ----

/// Encode as a JSON array of row objects (nulls omitted, like Vega tuples).
std::string SerializeJsonRows(const Table& table);

/// Decode a JSON array of row objects; column types inferred from values
/// (number cells become float64 unless every value is integral).
Result<TablePtr> DeserializeJsonRows(const std::string& text);

/// Convert a table to an in-memory json::Value (array of objects).
json::Value TableToJson(const Table& table);

/// Convert a JSON array of objects into a Table.
Result<TablePtr> JsonToTable(const json::Value& rows);

// ---- Columnar binary encoding ----

/// Encode a table into the columnar binary format (magic "VPT2").
std::string SerializeBinary(const Table& table);

/// Decode a columnar binary buffer produced by SerializeBinary. Takes a view
/// so callers holding mapped files (storage::ColumnFile) decode a chunk
/// without first copying its bytes into a std::string; the decoded table
/// owns its cells, so the view may be invalidated afterwards.
Result<TablePtr> DeserializeBinary(std::string_view buffer);

// ---- Tagged envelope ----
//
// Non-result payloads (aggregation tiles, future plan fragments) ride the
// same dict-aware columnar binary encoding, wrapped in a small envelope
// that carries a payload kind tag plus an opaque metadata string (typically
// JSON). Magic "VPE1".

struct Envelope {
  /// Payload kind, e.g. "TILE" for a tile-store level.
  std::string kind;
  /// Opaque metadata the producer needs alongside the table (e.g. bin
  /// start/step). Not interpreted by the codec.
  std::string meta;
  TablePtr table;
};

/// Wrap `table` (encoded via SerializeBinary) with a kind tag and metadata.
std::string SerializeEnvelope(const std::string& kind, const std::string& meta,
                              const Table& table);

/// Decode an envelope produced by SerializeEnvelope (view-based for the same
/// reason as DeserializeBinary; the body is decoded in place, not copied).
Result<Envelope> DeserializeEnvelope(std::string_view buffer);

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_IPC_H_
