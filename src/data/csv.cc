#include "data/csv.h"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace vegaplus {
namespace data {

namespace {

// Split one CSV record honoring double-quote quoting ("" = literal quote).
std::vector<std::string> SplitRecord(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool IsNaToken(const std::string& s, const CsvOptions& options) {
  if (s.empty()) return true;
  if (!options.treat_na_as_null) return false;
  return s == "NA" || s == "N/A" || s == "null" || s == "NULL" || s == "NaN";
}

DataType InferCell(const std::string& s) {
  int64_t i;
  if (ParseInt64(s, &i)) return DataType::kInt64;
  double d;
  if (ParseDouble(s, &d)) return DataType::kFloat64;
  int64_t ms;
  if (ParseTimestamp(s, &ms)) return DataType::kTimestamp;
  return DataType::kString;
}

DataType Widen(DataType a, DataType b) {
  if (a == b) return a;
  if (a == DataType::kNull) return b;
  if (b == DataType::kNull) return a;
  auto numeric = [](DataType t) { return t == DataType::kInt64 || t == DataType::kFloat64; };
  if (numeric(a) && numeric(b)) return DataType::kFloat64;
  return DataType::kString;
}

}  // namespace

bool ParseTimestamp(std::string_view s, int64_t* millis_out) {
  int year, month, day, hour = 0, minute = 0, second = 0;
  std::string buf(s);
  int matched;
  if (buf.find('T') != std::string::npos) {
    matched = std::sscanf(buf.c_str(), "%d-%d-%dT%d:%d:%d", &year, &month, &day, &hour,
                          &minute, &second);
    if (matched != 6) return false;
  } else {
    matched = std::sscanf(buf.c_str(), "%d-%d-%d %d:%d:%d", &year, &month, &day, &hour,
                          &minute, &second);
    if (matched != 3 && matched != 6) return false;
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 || hour > 23 ||
      minute < 0 || minute > 59 || second < 0 || second > 60) {
    return false;
  }
  // Days-from-civil algorithm (Howard Hinnant), UTC, no DST concerns.
  int y = year;
  unsigned m = static_cast<unsigned>(month);
  unsigned d = static_cast<unsigned>(day);
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const int64_t days = era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
  *millis_out = ((days * 24 + hour) * 60 + minute) * 60000LL + second * 1000LL;
  return true;
}

std::string FormatTimestamp(int64_t millis) {
  int64_t seconds = millis / 1000;
  int64_t days = seconds / 86400;
  int64_t secs_of_day = seconds % 86400;
  if (secs_of_day < 0) {
    secs_of_day += 86400;
    days -= 1;
  }
  // Civil-from-days (Howard Hinnant).
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  const int64_t year = y + (m <= 2);
  int hour = static_cast<int>(secs_of_day / 3600);
  int minute = static_cast<int>((secs_of_day % 3600) / 60);
  int second = static_cast<int>(secs_of_day % 60);
  return StrFormat("%04lld-%02u-%02u %02d:%02d:%02d", static_cast<long long>(year), m, d,
                   hour, minute, second);
}

Result<TablePtr> ReadCsvString(std::string_view text, const CsvOptions& options) {
  // Split into lines (handle \r\n); quoted fields containing newlines are not
  // supported (none of our datasets emit them).
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    std::string_view line;
    if (pos == std::string_view::npos) {
      line = text.substr(start);
      start = text.size() + 1;
    } else {
      line = text.substr(start, pos - start);
      start = pos + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) lines.push_back(line);
  }
  if (lines.empty()) return Status::ParseError("CSV: empty input");

  std::vector<std::string> header = SplitRecord(lines[0], options.delimiter);
  const size_t num_cols = header.size();
  const size_t num_rows = lines.size() - 1;

  // Pass 1: infer types from a sample.
  std::vector<DataType> types(num_cols, DataType::kNull);
  size_t sample = std::min(num_rows, options.inference_rows);
  for (size_t r = 0; r < sample; ++r) {
    auto fields = SplitRecord(lines[r + 1], options.delimiter);
    for (size_t c = 0; c < num_cols && c < fields.size(); ++c) {
      if (IsNaToken(fields[c], options)) continue;
      types[c] = Widen(types[c], InferCell(fields[c]));
    }
  }
  for (DataType& t : types) {
    if (t == DataType::kNull) t = DataType::kString;
  }

  std::vector<Field> schema_fields(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    schema_fields[c] = Field{header[c], types[c]};
  }
  TableBuilder builder(Schema(std::move(schema_fields)));
  builder.Reserve(num_rows);

  for (size_t r = 0; r < num_rows; ++r) {
    auto fields = SplitRecord(lines[r + 1], options.delimiter);
    if (fields.size() != num_cols) {
      return Status::ParseError(
          StrFormat("CSV: row %zu has %zu fields, expected %zu", r + 1, fields.size(),
                    num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) {
      Column* col = builder.column(c);
      const std::string& cell = fields[c];
      if (IsNaToken(cell, options)) {
        col->AppendNull();
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t v;
          if (ParseInt64(cell, &v)) {
            col->AppendInt(v);
          } else {
            col->AppendNull();
          }
          break;
        }
        case DataType::kFloat64: {
          double v;
          if (ParseDouble(cell, &v)) {
            col->AppendDouble(v);
          } else {
            col->AppendNull();
          }
          break;
        }
        case DataType::kTimestamp: {
          int64_t ms;
          if (ParseTimestamp(cell, &ms)) {
            col->AppendInt(ms);
          } else {
            col->AppendNull();
          }
          break;
        }
        default:
          col->AppendString(cell);
      }
    }
  }
  return builder.Build();
}

Result<TablePtr> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ReadCsvString(ss.str(), options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  auto write_field = [&](const std::string& s) {
    bool needs_quotes = s.find(options.delimiter) != std::string::npos ||
                        s.find('"') != std::string::npos ||
                        s.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out += s;
      return;
    }
    out.push_back('"');
    for (char c : s) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  };

  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(options.delimiter);
    write_field(table.schema().field(c).name);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      const Column& col = table.column(c);
      if (col.IsNull(r)) continue;
      if (col.type() == DataType::kTimestamp) {
        write_field(FormatTimestamp(col.IntAt(r)));
      } else {
        write_field(col.ValueAt(r).ToString());
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsvString(table, options);
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace data
}  // namespace vegaplus
