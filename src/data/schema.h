// Schema: ordered, named, typed fields of a Table.
#ifndef VEGAPLUS_DATA_SCHEMA_H_
#define VEGAPLUS_DATA_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/data_type.h"

namespace vegaplus {
namespace data {

struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Immutable ordered field list with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of field `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const { return FieldIndex(name) >= 0; }

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_SCHEMA_H_
