// CSV reader/writer with type inference. Used for dataset materialization
// and the pure-Vega baseline (which, like the paper's Vega condition, pays
// the cost of loading CSV from disk at initial rendering).
#ifndef VEGAPLUS_DATA_CSV_H_
#define VEGAPLUS_DATA_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "data/table.h"

namespace vegaplus {
namespace data {

struct CsvOptions {
  char delimiter = ',';
  /// Rows sampled for type inference (whole file if fewer).
  size_t inference_rows = 100;
  /// Strings parsed as null ("" always is).
  bool treat_na_as_null = true;
};

/// Parse CSV text (first row = header) into a Table. Column types are
/// inferred as the narrowest of int64 -> float64 -> timestamp -> string that
/// fits the sampled rows.
Result<TablePtr> ReadCsvString(std::string_view text, const CsvOptions& options = {});

/// Read and parse a CSV file.
Result<TablePtr> ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// Serialize a table to CSV text (header + rows).
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// Write a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Parse an ISO-8601-ish timestamp ("YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS")
/// to epoch milliseconds (UTC). Returns false on mismatch.
bool ParseTimestamp(std::string_view s, int64_t* millis_out);

/// Format epoch milliseconds as "YYYY-MM-DD HH:MM:SS".
std::string FormatTimestamp(int64_t millis);

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_CSV_H_
