#include "data/stats.h"

#include <cmath>
#include <unordered_set>

namespace vegaplus {
namespace data {

namespace {

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};

}  // namespace

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.num_rows = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnStats cs;
    cs.name = table.schema().field(c).name;
    cs.type = col.type();
    cs.null_count = col.null_count();

    std::unordered_set<Value, ValueHasher, ValueEq> seen;
    bool tracking = true;
    double min = std::nan("");
    double max = std::nan("");
    for (size_t r = 0; r < col.length(); ++r) {
      if (col.IsNull(r)) continue;
      if (IsNumericType(col.type())) {
        double v = col.NumericAt(r);
        if (std::isnan(min) || v < min) min = v;
        if (std::isnan(max) || v > max) max = v;
      }
      if (tracking) {
        Value v = col.ValueAt(r);
        if (seen.insert(v).second) {
          cs.domain.push_back(std::move(v));
          if (cs.domain.size() > kMaxTrackedDistinct) {
            tracking = false;
            cs.domain.clear();
          }
        }
      }
    }
    cs.distinct_is_exact = tracking;
    cs.distinct_count = tracking ? cs.domain.size() : kMaxTrackedDistinct + 1;
    if (!std::isnan(min)) {
      cs.min = min;
      cs.max = max;
      cs.has_extent = true;
    }
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace data
}  // namespace vegaplus
