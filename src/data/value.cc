#include "data/value.h"

#include <cmath>
#include <cstring>
#include <functional>

#include "common/str_util.h"

namespace vegaplus {
namespace data {

bool Value::Truthy() const {
  switch (type_) {
    case DataType::kNull: return false;
    case DataType::kBool: return int_ != 0;
    case DataType::kInt64:
    case DataType::kTimestamp: return int_ != 0;
    case DataType::kFloat64: return double_ != 0.0 && !std::isnan(double_);
    case DataType::kString: return !str_.empty();
  }
  return false;
}

int Value::Compare(const Value& other) const {
  // Nulls sort first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  const bool a_num = is_numeric() || is_bool();
  const bool b_num = other.is_numeric() || other.is_bool();
  if (a_num && b_num) {
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    return str_.compare(other.str_) < 0 ? -1 : (str_ == other.str_ ? 0 : 1);
  }
  // Mixed string/number: order by type id for a stable total order.
  int a_id = static_cast<int>(type_);
  int b_id = static_cast<int>(other.type_);
  return a_id < b_id ? -1 : (a_id == b_id ? 0 : 1);
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9E3779B9u;
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kFloat64: {
      // Hash through double so Int(3) and Double(3.0) collide with equality.
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(d));
      bits *= 0xFF51AFD7ED558CCDull;
      bits ^= bits >> 33;
      return static_cast<size_t>(bits);
    }
    case DataType::kString:
      return std::hash<std::string>{}(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull: return "null";
    case DataType::kBool: return int_ ? "true" : "false";
    case DataType::kInt64: return StrFormat("%lld", static_cast<long long>(int_));
    case DataType::kTimestamp: return StrFormat("%lld", static_cast<long long>(int_));
    case DataType::kFloat64: return FormatDouble(double_);
    case DataType::kString: return str_;
  }
  return "?";
}

}  // namespace data
}  // namespace vegaplus
