// Scalar Value: the dynamically-typed cell used at module boundaries
// (expression evaluation, row building, SQL literals). Columns store data
// natively; Value is the exchange format, not the storage format.
#ifndef VEGAPLUS_DATA_VALUE_H_
#define VEGAPLUS_DATA_VALUE_H_

#include <cstdint>
#include <string>

#include "data/data_type.h"

namespace vegaplus {
namespace data {

/// \brief A nullable scalar of any DataType.
class Value {
 public:
  Value() : type_(DataType::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = DataType::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = DataType::kInt64;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = DataType::kFloat64;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.str_ = std::move(s);
    return v;
  }
  static Value Timestamp(int64_t millis) {
    Value v;
    v.type_ = DataType::kTimestamp;
    v.int_ = millis;
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }
  bool is_bool() const { return type_ == DataType::kBool; }
  bool is_int() const { return type_ == DataType::kInt64; }
  bool is_double() const { return type_ == DataType::kFloat64; }
  bool is_string() const { return type_ == DataType::kString; }
  bool is_timestamp() const { return type_ == DataType::kTimestamp; }
  bool is_numeric() const { return IsNumericType(type_); }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt() const { return type_ == DataType::kFloat64 ? static_cast<int64_t>(double_) : int_; }
  /// Numeric view of the value (bool -> 0/1, timestamp -> millis).
  double AsDouble() const {
    return type_ == DataType::kFloat64 ? double_ : static_cast<double>(int_);
  }
  const std::string& AsString() const { return str_; }

  /// Truthiness per the Vega expression language (JS semantics).
  bool Truthy() const;

  /// Total order for sorting: nulls first, then numeric/bool by value, then
  /// strings lexicographically. Cross-type comparisons order by type id.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash compatible with Compare()==0 (numeric 3 and 3.0 hash equal).
  size_t Hash() const;

  /// Display string: JSON-ish ("null", "true", "3.5", "abc").
  std::string ToString() const;

 private:
  DataType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_VALUE_H_
