#include "data/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace vegaplus {
namespace data {

Table::Table(Schema schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  VP_CHECK(schema_.num_fields() == columns_.size())
      << "schema/column count mismatch: " << schema_.num_fields() << " vs "
      << columns_.size();
  num_rows_ = columns_.empty() ? 0 : columns_[0].length();
  for (const Column& c : columns_) {
    VP_CHECK(c.length() == num_rows_) << "ragged columns";
  }
}

const Column* Table::ColumnByName(const std::string& name) const {
  int idx = schema_.FieldIndex(name);
  return idx < 0 ? nullptr : &columns_[static_cast<size_t>(idx)];
}

Value Table::ValueAt(size_t row, const std::string& name) const {
  const Column* col = ColumnByName(name);
  return col ? col->ValueAt(row) : Value::Null();
}

TablePtr Table::Take(const std::vector<int32_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) {
    cols.push_back(c.Take(indices));
  }
  return std::make_shared<Table>(schema_, std::move(cols));
}

TablePtr Table::Slice(size_t offset, size_t len) const {
  offset = std::min(offset, num_rows_);
  len = std::min(len, num_rows_ - offset);
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) {
    cols.push_back(c.Slice(offset, len));
  }
  return std::make_shared<Table>(schema_, std::move(cols));
}

TablePtr Table::Head(size_t n) const { return Slice(0, n); }

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << num_rows_ << "\n";
  size_t n = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    os << "  ";
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << " | ";
      os << columns_[c].ValueAt(r).ToString();
    }
    os << "\n";
  }
  if (n < num_rows_) os << "  ... (" << (num_rows_ - n) << " more)\n";
  return os.str();
}

bool Table::Equals(const Table& other) const {
  if (!(schema_ == other.schema_) || num_rows_ != other.num_rows_) return false;
  for (size_t c = 0; c < columns_.size(); ++c) {
    for (size_t r = 0; r < num_rows_; ++r) {
      if (columns_[c].ValueAt(r) != other.columns_[c].ValueAt(r)) return false;
    }
  }
  return true;
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

void TableBuilder::AppendRow(const std::vector<Value>& values) {
  VP_CHECK(values.size() == columns_.size()) << "row width mismatch";
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i].Append(values[i]);
  }
}

void TableBuilder::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

TablePtr TableBuilder::Build() {
  auto t = std::make_shared<Table>(schema_, std::move(columns_));
  columns_.clear();
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
  return t;
}

TablePtr MakeTable(Schema schema, const std::vector<std::vector<Value>>& rows) {
  TableBuilder builder(std::move(schema));
  builder.Reserve(rows.size());
  for (const auto& row : rows) builder.AppendRow(row);
  return builder.Build();
}

TablePtr EmptyTable(Schema schema) { return MakeTable(std::move(schema), {}); }

}  // namespace data
}  // namespace vegaplus
