// Column: typed, nullable, append-only storage. Numeric types are stored in
// native vectors (no boxing); Value is only materialized at cell access.
//
// Storage is held behind a shared_ptr so columns can be copied and sliced
// without duplicating cell data: Slice() returns a view (offset + length)
// over the same buffers, and plain Column copies share storage until one
// side mutates (copy-on-write on the first Append after sharing).
#ifndef VEGAPLUS_DATA_COLUMN_H_
#define VEGAPLUS_DATA_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "data/data_type.h"
#include "data/value.h"

namespace vegaplus {
namespace data {

/// \brief A single column of a Table.
class Column {
 public:
  explicit Column(DataType type = DataType::kNull)
      : type_(type), store_(std::make_shared<Storage>()) {}

  /// Bulk construction: adopt `values` as a kFloat64 column. `validity` uses
  /// 1 = present / 0 = null and must be empty (all valid) or values-sized.
  static Column FromDoubles(std::vector<double> values,
                            std::vector<uint8_t> validity);

  DataType type() const { return type_; }
  size_t length() const { return length_; }

  bool IsNull(size_t i) const { return store_->validity[offset_ + i] == 0; }
  size_t null_count() const { return null_count_; }

  // Typed accessors; caller must ensure the type matches and !IsNull(i).
  bool BoolAt(size_t i) const { return store_->ints[offset_ + i] != 0; }
  int64_t IntAt(size_t i) const { return store_->ints[offset_ + i]; }
  double DoubleAt(size_t i) const { return store_->doubles[offset_ + i]; }
  const std::string& StringAt(size_t i) const { return store_->strings[offset_ + i]; }

  /// Numeric view of cell i (int/timestamp/bool widen to double); NaN if null
  /// or non-numeric.
  double NumericAt(size_t i) const;

  /// Boxed cell access (null-aware).
  Value ValueAt(size_t i) const;

  /// Append a value, coercing numerics (int<->double) as needed. Appending an
  /// incompatible value (e.g. string into int64) appends null.
  void Append(const Value& v);
  void AppendNull();

  // Fast-path appends (type must match the column type).
  void AppendBool(bool v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  void Reserve(size_t n);

  /// Gather: new column containing rows [indices] in order.
  Column Take(const std::vector<int32_t>& indices) const;

  /// Zero-copy view of rows [offset, offset + len); shares cell storage with
  /// this column. `offset`/`len` are clamped to the column length.
  Column Slice(size_t offset, size_t len) const;

  // Raw storage access for serialization and vectorized execution. Pointers
  // are slice-aware (already offset) and cover length() entries; they stay
  // valid while any column sharing the storage is alive.
  const int64_t* ints_data() const { return store_->ints.data() + offset_; }
  const double* doubles_data() const { return store_->doubles.data() + offset_; }
  const std::string* strings_data() const { return store_->strings.data() + offset_; }
  const uint8_t* validity_data() const { return store_->validity.data() + offset_; }

 private:
  struct Storage {
    std::vector<uint8_t> validity;  // 1 = present, 0 = null
    // Exactly one of these is populated, chosen by the column type.
    std::vector<int64_t> ints;          // kBool, kInt64, kTimestamp, kNull
    std::vector<double> doubles;        // kFloat64
    std::vector<std::string> strings;   // kString
  };

  /// Make the storage exclusively owned and un-sliced before a mutation.
  void EnsureMutable();

  DataType type_;
  std::shared_ptr<Storage> store_;
  size_t offset_ = 0;
  size_t length_ = 0;
  size_t null_count_ = 0;
};

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_COLUMN_H_
