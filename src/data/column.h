// Column: typed, nullable, append-only storage. Numeric types are stored in
// native vectors (no boxing); Value is only materialized at cell access.
#ifndef VEGAPLUS_DATA_COLUMN_H_
#define VEGAPLUS_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "data/data_type.h"
#include "data/value.h"

namespace vegaplus {
namespace data {

/// \brief A single column of a Table.
class Column {
 public:
  explicit Column(DataType type = DataType::kNull) : type_(type) {}

  DataType type() const { return type_; }
  size_t length() const { return validity_.size(); }

  bool IsNull(size_t i) const { return validity_[i] == 0; }
  size_t null_count() const { return null_count_; }

  // Typed accessors; caller must ensure the type matches and !IsNull(i).
  bool BoolAt(size_t i) const { return ints_[i] != 0; }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Numeric view of cell i (int/timestamp/bool widen to double); NaN if null
  /// or non-numeric.
  double NumericAt(size_t i) const;

  /// Boxed cell access (null-aware).
  Value ValueAt(size_t i) const;

  /// Append a value, coercing numerics (int<->double) as needed. Appending an
  /// incompatible value (e.g. string into int64) appends null.
  void Append(const Value& v);
  void AppendNull();

  // Fast-path appends (type must match the column type).
  void AppendBool(bool v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  void Reserve(size_t n);

  /// Gather: new column containing rows [indices] in order.
  Column Take(const std::vector<int32_t>& indices) const;

  /// Raw storage access for serialization paths.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& validity() const { return validity_; }

 private:
  DataType type_;
  std::vector<uint8_t> validity_;  // 1 = present, 0 = null
  size_t null_count_ = 0;
  // Exactly one of these is populated, chosen by type_.
  std::vector<int64_t> ints_;       // kBool, kInt64, kTimestamp
  std::vector<double> doubles_;     // kFloat64
  std::vector<std::string> strings_;  // kString
};

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_COLUMN_H_
