// Column: typed, nullable, append-only storage. Numeric types are stored in
// native vectors (no boxing); Value is only materialized at cell access.
//
// Storage is held behind a shared_ptr so columns can be copied and sliced
// without duplicating cell data: Slice() returns a view (offset + length)
// over the same buffers, and plain Column copies share storage until one
// side mutates (copy-on-write on the first Append after sharing).
//
// String columns come in two physical forms with identical observable
// behavior:
//   - flat: std::vector<std::string>, one string per row.
//   - dictionary-encoded (the default for new columns while
//     DictionaryEncodingEnabled()): a shared StringDictionary of unique
//     strings plus one int32 code per row (-1 = null). Grouping,
//     equality filtering, and sorting on dictionary columns run at
//     integer speed, and IPC payloads shrink for low-cardinality data.
// Take/Slice/copies share the dictionary; appending a string that is not
// yet in a shared dictionary clones it first (copy-on-write), so sibling
// columns and outstanding readers are never invalidated.
#ifndef VEGAPLUS_DATA_COLUMN_H_
#define VEGAPLUS_DATA_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "data/data_type.h"
#include "data/value.h"

namespace vegaplus {
namespace data {

/// Global kill switch (default on): when off, newly built string columns use
/// the flat representation. Existing columns keep whatever form they have —
/// execution paths branch on the column, not the switch — so differential
/// tests can compare dictionary and flat pipelines end to end.
///
/// Deprecated as a public configuration surface: prefer
/// runtime::EngineConfig (runtime/engine_config.h), which snapshots and
/// applies every process-wide switch coherently. This pair remains the
/// storage owner.
bool DictionaryEncodingEnabled();
void SetDictionaryEncodingEnabled(bool enabled);

/// \brief Unique-string dictionary shared by dictionary-encoded columns and
/// the expression engine's code-backed registers. Codes index `values`;
/// `index` maps each value back to its code for incremental appends.
/// Dictionaries are effectively immutable once shared (columns clone before
/// adding a new unique string to a shared dictionary).
struct StringDictionary {
  std::vector<std::string> values;
  std::unordered_map<std::string, int32_t> index;

  /// Code of `s`, or -1 when absent.
  int32_t Find(const std::string& s) const {
    auto it = index.find(s);
    return it == index.end() ? -1 : it->second;
  }

  /// Code of `s`, adding it when absent. Callers own the sharing rules
  /// (clone-before-mutate when the dictionary is shared — see
  /// Column::DictCode).
  int32_t Intern(std::string s) {
    auto it = index.find(s);
    if (it != index.end()) return it->second;
    const int32_t code = static_cast<int32_t>(values.size());
    index.emplace(s, code);
    values.push_back(std::move(s));
    return code;
  }
};

/// Shared read-only view of a dictionary; keeps it alive independently of
/// the owning column.
using DictPtr = std::shared_ptr<const StringDictionary>;

/// \brief A single column of a Table.
class Column {
 public:
  explicit Column(DataType type = DataType::kNull)
      : type_(type), store_(std::make_shared<Storage>()) {}

  /// Bulk construction: adopt `values` as a kFloat64 column. `validity` uses
  /// 1 = present / 0 = null and must be empty (all valid) or values-sized.
  static Column FromDoubles(std::vector<double> values,
                            std::vector<uint8_t> validity);

  /// Bulk construction of a flat kString column (used by deserialization and
  /// DecodeFlat so the flat form survives regardless of the kill switch).
  /// `validity` as in FromDoubles; null cells keep empty strings.
  static Column FromStrings(std::vector<std::string> values,
                            std::vector<uint8_t> validity);

  /// Bulk construction of a dictionary-encoded kString column: `codes[i]`
  /// indexes `dict->values`, -1 = null. The dictionary is shared, not
  /// copied. Codes must be in [-1, dict->values.size()).
  static Column FromDictionary(DictPtr dict, std::vector<int32_t> codes);

  DataType type() const { return type_; }
  size_t length() const { return length_; }

  bool IsNull(size_t i) const { return store_->validity[offset_ + i] == 0; }
  size_t null_count() const { return null_count_; }

  // Typed accessors; caller must ensure the type matches and !IsNull(i).
  bool BoolAt(size_t i) const { return store_->ints[offset_ + i] != 0; }
  int64_t IntAt(size_t i) const { return store_->ints[offset_ + i]; }
  double DoubleAt(size_t i) const { return store_->doubles[offset_ + i]; }
  const std::string& StringAt(size_t i) const {
    const Storage& s = *store_;
    if (s.dict == nullptr) return s.strings[offset_ + i];
    const int32_t code = s.codes[offset_ + i];
    // Null cells resolve to the empty string, exactly like the flat form's
    // normalized storage (callers should gate on IsNull, but unguarded
    // iteration must not become out-of-bounds on codes of -1).
    if (code < 0) {
      static const std::string kEmpty;
      return kEmpty;
    }
    return s.dict->values[static_cast<size_t>(code)];
  }

  // ---- Dictionary form ----

  /// True when this kString column stores dictionary codes.
  bool dict_encoded() const { return store_->dict != nullptr; }
  /// The dictionary (dict_encoded() only).
  const StringDictionary& dict() const { return *store_->dict; }
  /// Shared handle to the dictionary (dict_encoded() only); two columns
  /// share a dictionary iff their handles compare equal.
  DictPtr dict_shared() const { return store_->dict; }
  /// Slice-aware code pointer covering length() entries (dict_encoded()
  /// only); -1 = null.
  const int32_t* codes_data() const { return store_->codes.data() + offset_; }

  /// Dictionary-encoded copy of a kString column (shares storage when
  /// already encoded; non-string columns copy unchanged).
  Column EncodeDictionary() const;
  /// Flat copy of a kString column (shares storage when already flat;
  /// non-string columns copy unchanged).
  Column DecodeFlat() const;

  /// Numeric view of cell i (int/timestamp/bool widen to double); NaN if null
  /// or non-numeric.
  double NumericAt(size_t i) const;

  /// Boxed cell access (null-aware).
  Value ValueAt(size_t i) const;

  /// Append a value, coercing numerics (int<->double) as needed. Appending an
  /// incompatible value (e.g. string into int64) appends null.
  void Append(const Value& v);
  void AppendNull();

  // Fast-path appends (type must match the column type).
  void AppendBool(bool v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  void Reserve(size_t n);

  /// Gather: new column containing rows [indices] in order.
  Column Take(const std::vector<int32_t>& indices) const;

  /// Zero-copy view of rows [offset, offset + len); shares cell storage with
  /// this column. `offset`/`len` are clamped to the column length.
  Column Slice(size_t offset, size_t len) const;

  // Raw storage access for serialization and vectorized execution. Pointers
  // are slice-aware (already offset) and cover length() entries; they stay
  // valid while any column sharing the storage is alive. strings_data() is
  // only meaningful for flat string columns (see dict_encoded()).
  const int64_t* ints_data() const { return store_->ints.data() + offset_; }
  const double* doubles_data() const { return store_->doubles.data() + offset_; }
  const std::string* strings_data() const {
    VP_DCHECK(!dict_encoded()) << "strings_data() on a dictionary column";
    return store_->strings.data() + offset_;
  }
  const uint8_t* validity_data() const { return store_->validity.data() + offset_; }

  // Shared views of whole storage buffers, used by the expression engine to
  // alias column data into registers without copying. Non-null only when
  // this column spans its entire storage (offset 0, full length); callers
  // fall back to copying otherwise. The aliases participate in the storage
  // refcount, so copy-on-write keeps them stable across later appends.
  std::shared_ptr<std::vector<double>> shared_doubles() const;
  std::shared_ptr<std::vector<uint8_t>> shared_validity() const;
  std::shared_ptr<std::vector<int32_t>> shared_codes() const;

  // Storage identity, used by caches (storage::GetMorselZones) to key derived
  // metadata. Storage is append-only: cells [0, length) are never overwritten
  // while the same Storage object lives, so (identity, offset, length)
  // uniquely determines cell contents. Hold the anchor weakly so a recycled
  // allocation at the same address cannot alias a stale cache entry.
  const void* storage_identity() const { return store_.get(); }
  std::shared_ptr<const void> storage_anchor() const { return store_; }
  size_t storage_offset() const { return offset_; }

 private:
  struct Storage {
    std::vector<uint8_t> validity;  // 1 = present, 0 = null
    // Exactly one of these is populated, chosen by the column type.
    std::vector<int64_t> ints;          // kBool, kInt64, kTimestamp, kNull
    std::vector<double> doubles;        // kFloat64
    std::vector<std::string> strings;   // kString, flat form
    // kString, dictionary form: dict != nullptr, one code per row.
    std::shared_ptr<StringDictionary> dict;
    std::vector<int32_t> codes;
  };

  /// Make the storage exclusively owned and un-sliced before a mutation.
  void EnsureMutable();

  /// Code for `v` in this column's dictionary, adding it (with dictionary
  /// copy-on-write) when absent. Requires exclusive storage.
  int32_t DictCode(std::string v);

  /// True when storage spans exactly this column's rows (no slice offset).
  bool FullRange() const {
    return offset_ == 0 && length_ == store_->validity.size();
  }

  DataType type_;
  std::shared_ptr<Storage> store_;
  size_t offset_ = 0;
  size_t length_ = 0;
  size_t null_count_ = 0;
};

}  // namespace data
}  // namespace vegaplus

#endif  // VEGAPLUS_DATA_COLUMN_H_
