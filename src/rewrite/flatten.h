// Rule-based query flattening (§4: "we also support rule-based query
// rewriting to transform nested batch queries into a more readable format").
//
// Rules, applied bottom-up to fixpoint:
//   R1 (filter merge): SELECT <items> FROM (SELECT * FROM X WHERE c1) WHERE c2
//       -> SELECT <items> FROM X WHERE c1 AND c2       (sub has no extras)
//   R2 (projection inline): subquery of the shape
//       SELECT *, e1 AS n1, ..., ek AS nk FROM X        (no WHERE/GROUP/...)
//       is inlined by substituting n1..nk with e1..ek in the outer query.
//       This is what merges bin into the aggregate query (Example 4.1).
#ifndef VEGAPLUS_REWRITE_FLATTEN_H_
#define VEGAPLUS_REWRITE_FLATTEN_H_

#include <memory>

#include "sql/sql_ast.h"

namespace vegaplus {
namespace rewrite {

/// Deep-copy a statement (the rewriter mutates copies).
std::shared_ptr<sql::SelectStmt> CloneStmt(const sql::SelectStmt& stmt);

/// Flatten `stmt` in place (recursively flattens subqueries first).
void FlattenStmt(sql::SelectStmt* stmt);

/// Substitute column references named `name` with `replacement` throughout
/// an expression tree; returns the (possibly new) root.
expr::NodePtr SubstituteColumn(const expr::NodePtr& node, const std::string& name,
                               const expr::NodePtr& replacement);

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_FLATTEN_H_
