// QueryService: what a VDT talks to. The runtime module's Middleware
// implements this (cache -> network -> DBMS); tests can stub it.
#ifndef VEGAPLUS_REWRITE_QUERY_SERVICE_H_
#define VEGAPLUS_REWRITE_QUERY_SERVICE_H_

#include <string>

#include "common/result.h"
#include "data/table.h"

namespace vegaplus {
namespace rewrite {

/// \brief Outcome of one query round trip, as observed by the client.
struct QueryResponse {
  data::TablePtr table;
  /// Simulated end-to-end latency of this request (server + network +
  /// decode), in milliseconds.
  double latency_millis = 0;
  /// Encoded payload size that crossed the wire.
  size_t bytes = 0;
  /// Which tier answered (client cache / middleware cache / DBMS).
  enum class Source { kClientCache, kServerCache, kDbms } source = Source::kDbms;
};

/// \brief Interface VDTs use to run SQL "remotely".
class QueryService {
 public:
  virtual ~QueryService() = default;
  virtual Result<QueryResponse> Execute(const std::string& sql) = 0;
};

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_QUERY_SERVICE_H_
