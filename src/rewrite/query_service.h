// QueryService: what a VDT talks to. The runtime module's Middleware /
// Session implement this (cache -> network -> DBMS); tests can stub it.
//
// The contract is session-oriented and asynchronous:
//   * Prepare(template) parses the SQL template once and returns a
//     PreparedHandle; the statement identity is formatting-insensitive.
//   * Submit(QueryRequest{handle, params, generation}) returns a future-like
//     QueryTicket immediately; Await() blocks for the response, Cancel()
//     abandons it. A newer generation submitted for the same handle within a
//     session supersedes (cancels) the older in-flight request.
//   * Execute(sql) is the retired legacy string path: a deprecated shim that
//     forwards through Prepare + Submit + Await. Implementations provide
//     Prepare/Submit; there is no synchronous execution path of its own
//     anymore.
#ifndef VEGAPLUS_REWRITE_QUERY_SERVICE_H_
#define VEGAPLUS_REWRITE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "data/table.h"
#include "expr/evaluator.h"

namespace vegaplus {
namespace rewrite {

/// \brief Outcome of one query round trip, as observed by the client.
struct QueryResponse {
  data::TablePtr table;
  /// Simulated end-to-end latency of this request (server + network +
  /// decode), in milliseconds.
  double latency_millis = 0;
  /// Encoded payload size that crossed the wire.
  size_t bytes = 0;
  /// Which tier answered (client cache / middleware cache / middleware tile
  /// store / DBMS / the stale-result archive on a degraded serve).
  enum class Source {
    kClientCache,
    kServerCache,
    kTileStore,
    kStaleCache,
    kDbms
  } source = Source::kDbms;
  /// True when the middleware could not produce the exact fresh answer in
  /// time (backend outage, open circuit breaker, expired deadline) and served
  /// a bounded-latency substitute instead: a stale-but-previously-exact
  /// cached result (kStaleCache) or a coarser precomputed tile level
  /// (kTileStore). Clients should render it but may mark it provisional.
  bool degraded = false;
};

/// Opaque id of a prepared statement within one QueryService (0 = invalid).
using PreparedHandle = uint64_t;

/// \brief One bound parameter of a Submit call.
struct QueryParam {
  std::string name;
  expr::EvalValue value;

  bool operator==(const QueryParam& other) const {
    return name == other.name && value == other.value;
  }
  bool operator!=(const QueryParam& other) const { return !(*this == other); }
};

/// \brief An asynchronous query submission.
struct QueryRequest {
  PreparedHandle handle = 0;
  std::vector<QueryParam> params;
  /// Client-side interaction generation. Within one session, submitting a
  /// newer generation for the same supersession scope cancels the older
  /// in-flight request (its work is superseded; decoding it would be
  /// wasted). Generation 0 opts out entirely (independent submissions).
  uint64_t generation = 0;
  /// Supersession scope: requests relate only when they come from the same
  /// submitter (e.g. one VDT — distinct VDTs that happen to share a
  /// deduplicated statement must not cancel each other). 0 scopes by
  /// statement handle alone.
  uint64_t client_id = 0;
  /// Soft deadline in wall-clock milliseconds from Submit, 0 = none. The
  /// service stops *starting* backend work (DBMS execution, retries, backoff
  /// sleeps) once the deadline passes and resolves the ticket — with a
  /// degraded response when one is available, else kDeadlineExceeded. Work
  /// that already completed is still delivered (and cached), never wasted.
  double deadline_ms = 0;
};

/// \brief Future-like handle for one submitted query.
///
/// Thread-safe. Produced by QueryService::Submit; resolved by the service
/// (possibly on a worker thread) via BeginExecution()/CommitDelivery()/
/// Deliver().
class QueryTicket {
 public:
  QueryTicket() = default;
  explicit QueryTicket(uint64_t generation) : generation_(generation) {}

  /// Block until the response (or error / cancellation) is available.
  Result<QueryResponse> Await();

  /// Bounded wait: like Await() but gives up after `timeout`, returning
  /// kDeadlineExceeded. The timeout does NOT cancel the in-flight work — the
  /// request keeps executing and a later Await()/Await(timeout) call can
  /// still pick up the eventual result. Callers that want to abandon the
  /// work as well should Cancel() after the timeout.
  Result<QueryResponse> Await(std::chrono::milliseconds timeout);

  /// Request cancellation. A ticket cancelled before execution starts never
  /// touches the DBMS; one cancelled mid-execution still resolves to
  /// Status::Cancelled (the result is discarded, never delivered). Returns
  /// false when the ticket had already completed.
  bool Cancel();

  bool done() const;
  bool cancel_requested() const;
  uint64_t generation() const { return generation_; }

  // ---- Service-side API ----

  /// Immediately resolved ticket (cache hits, synchronous adapters).
  static std::shared_ptr<QueryTicket> Ready(Result<QueryResponse> response,
                                            uint64_t generation = 0);

  /// Mark the ticket as executing. Returns false when cancellation was
  /// requested first — the service must then skip execution (the ticket
  /// resolves to Cancelled).
  bool BeginExecution();

  /// Resolution is two-step so services can account for the outcome
  /// *before* the awaiting client wakes up (stats must never lag a
  /// delivered response):
  ///
  ///   bool delivered = ticket->CommitDelivery();  // freeze the outcome
  ///   ... record stats for delivered / cancelled ...
  ///   ticket->Deliver(std::move(response));       // publish + notify
  ///
  /// CommitDelivery returns false when a cancellation requested
  /// mid-execution wins: Deliver will then publish Status::Cancelled
  /// instead of the response. After CommitDelivery, Cancel() can no longer
  /// change the outcome.
  bool CommitDelivery();
  void Deliver(Result<QueryResponse> response);

  /// Attach the cooperative cancellation token of the execution serving this
  /// ticket. From then on, Cancel() also fires the token, so a superseded or
  /// abandoned request stops *running* at the engine's next morsel
  /// checkpoint instead of merely having its result discarded. If
  /// cancellation was already requested, the token fires immediately.
  void LinkCancel(std::shared_ptr<common::CancelToken> token);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  bool cancel_requested_ = false;
  bool executing_ = false;
  bool delivery_decided_ = false;
  bool deliver_response_ = false;  // valid once delivery_decided_
  uint64_t generation_ = 0;
  Result<QueryResponse> response_{QueryResponse{}};
  /// Fired by Cancel() once linked; lets cancellation reach into a running
  /// engine execution instead of only racing its delivery.
  std::shared_ptr<common::CancelToken> cancel_token_;
};

using QueryTicketPtr = std::shared_ptr<QueryTicket>;

/// \brief Interface VDTs use to run SQL "remotely".
///
/// Implementations provide the session API: Prepare (parse a SQL template
/// once, return a handle) and Submit (bind parameters, return a ticket).
/// The former pure-virtual Execute(sql) contract — and the base-class sync
/// adapter that let a service implement only Execute — is retired; Execute
/// survives only as a deprecated shim over the session API.
class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Parse `sql_template` once; returns a handle for Submit. Statement
  /// identity should be formatting-insensitive where the implementation can
  /// afford it (the runtime Middleware canonicalizes the parsed AST).
  virtual Result<PreparedHandle> Prepare(const std::string& sql_template) = 0;

  /// Submit a prepared query with bound parameters; returns a future-like
  /// ticket immediately. Implementations are free to resolve it
  /// synchronously (QueryTicket::Ready).
  virtual QueryTicketPtr Submit(const QueryRequest& request) = 0;

  /// DEPRECATED legacy blocking string path. The default forwards through
  /// the session API — Prepare(sql), Submit with no parameters, Await — so
  /// every execution flows through the one asynchronous front door.
  /// Overrides may adjust shim bookkeeping (runtime::Session releases its
  /// transient statement pin) but must not reintroduce a second execution
  /// path. New callers should use Prepare/Submit directly.
  virtual Result<QueryResponse> Execute(const std::string& sql);
};

/// Resolver view over a Submit call's bound parameters.
class ParamResolver : public expr::SignalResolver {
 public:
  explicit ParamResolver(const std::vector<QueryParam>& params) : params_(params) {}
  bool Lookup(const std::string& name, expr::EvalValue* out) const override {
    for (const QueryParam& p : params_) {
      if (p.name == name) {
        *out = p.value;
        return true;
      }
    }
    return false;
  }

 private:
  const std::vector<QueryParam>& params_;
};

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_QUERY_SERVICE_H_
