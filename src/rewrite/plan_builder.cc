#include "rewrite/plan_builder.h"

#include "common/str_util.h"
#include "rewrite/flatten.h"
#include "spec/transform_factory.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace rewrite {

PlanBuilder::PlanBuilder(const spec::VegaSpec& spec) : spec_(spec) {
  reserved_ = spec::ComputeClientReserved(spec_);
  parent_.resize(spec_.data.size(), -1);
  children_.resize(spec_.data.size());
  max_splits_.resize(spec_.data.size(), 0);
  for (size_t i = 0; i < spec_.data.size(); ++i) {
    const spec::DataSpec& d = spec_.data[i];
    max_splits_[i] = RewritablePrefixLength(d);
    if (!d.source.empty()) {
      for (size_t j = 0; j < i; ++j) {
        if (spec_.data[j].name == d.source) {
          parent_[i] = static_cast<int>(j);
          children_[j].push_back(static_cast<int>(i));
          break;
        }
      }
    }
  }
}

ExecutionPlan PlanBuilder::AllClientPlan() const {
  ExecutionPlan plan;
  plan.splits.assign(spec_.data.size(), 0);
  return plan;
}

ExecutionPlan PlanBuilder::FullPushdownPlan() const {
  ExecutionPlan plan;
  plan.splits.assign(spec_.data.size(), 0);
  for (size_t i = 0; i < spec_.data.size(); ++i) {
    int p = parent_[i];
    bool parent_ok =
        p < 0 || (plan.splits[static_cast<size_t>(p)] ==
                      static_cast<int>(spec_.data[static_cast<size_t>(p)].transforms.size()) &&
                  reserved_.count(spec_.data[static_cast<size_t>(p)].name) == 0);
    plan.splits[i] = parent_ok ? max_splits_[i] : 0;
  }
  return plan;
}

Status PlanBuilder::Validate(const ExecutionPlan& plan) const {
  if (plan.splits.size() != spec_.data.size()) {
    return Status::InvalidArgument(
        StrFormat("plan has %zu splits for %zu data entries", plan.splits.size(),
                  spec_.data.size()));
  }
  for (size_t i = 0; i < plan.splits.size(); ++i) {
    int s = plan.splits[i];
    if (s < 0 || s > max_splits_[i]) {
      return Status::InvalidArgument(
          StrFormat("entry '%s': split %d outside [0, %d]", spec_.data[i].name.c_str(),
                    s, max_splits_[i]));
    }
    if (s > 0) {
      int p = parent_[i];
      if (p >= 0) {
        const spec::DataSpec& parent = spec_.data[static_cast<size_t>(p)];
        if (plan.splits[static_cast<size_t>(p)] !=
            static_cast<int>(parent.transforms.size())) {
          return Status::InvalidArgument("entry '" + spec_.data[i].name +
                                         "': server split requires fully rewritten "
                                         "parent '" + parent.name + "'");
        }
        if (reserved_.count(parent.name) > 0) {
          return Status::InvalidArgument("entry '" + spec_.data[i].name +
                                         "': parent '" + parent.name +
                                         "' is reserved by dependency checking");
        }
      }
    }
  }
  return Status::OK();
}

Result<PlanDataflow> PlanBuilder::Build(const ExecutionPlan& plan,
                                        QueryService* service) const {
  VP_RETURN_IF_ERROR(Validate(plan));
  PlanDataflow out;
  out.graph = std::make_unique<dataflow::Dataflow>();
  dataflow::Dataflow& graph = *out.graph;

  for (const auto& sig : spec_.signals) {
    graph.DeclareSignal(sig.name, expr::EvalValue::FromJson(sig.init));
  }

  // Server pipelines of fully rewritten entries (for children to extend).
  std::vector<ServerPipeline> pipelines(spec_.data.size());
  std::vector<bool> fully_rewritten(spec_.data.size(), false);
  std::map<std::string, dataflow::Operator*> client_tails;
  int unique_counter = 0;

  for (size_t i = 0; i < spec_.data.size(); ++i) {
    const spec::DataSpec& d = spec_.data[i];
    const int split = plan.splits[i];
    const int total = static_cast<int>(d.transforms.size());

    // Does anyone need this entry's output on the client?
    bool has_client_ops = split < total;
    bool child_needs_client = false;
    for (int c : children_[i]) {
      if (plan.splits[static_cast<size_t>(c)] == 0) child_needs_client = true;
    }
    bool is_leaf = children_[i].empty();
    bool fetch_needed = reserved_.count(d.name) > 0 || has_client_ops ||
                        child_needs_client || is_leaf;

    // ---- Server part ----
    ServerPipeline pipeline;
    if (parent_[i] >= 0) {
      pipeline = pipelines[static_cast<size_t>(parent_[i])];  // copy
      if (pipeline.stmt) pipeline.stmt = CloneStmt(*pipeline.stmt);
      pipeline.side_queries.clear();  // parent's side VDTs already created
    } else {
      pipeline = MakeTablePipeline(!d.table.empty() ? d.table : d.name);
    }
    if (split > 0 || parent_[i] < 0) {
      for (int t = 0; t < split; ++t) {
        VP_RETURN_IF_ERROR(ExtendPipeline(&pipeline, d.transforms[static_cast<size_t>(t)],
                                          unique_counter++));
      }
      // Create signal VDTs for extent transforms inside the prefix.
      for (auto& side : pipeline.side_queries) {
        auto vdt = std::make_unique<SignalVdtOp>(side.sql_template, side.derived,
                                                 service, side.output_signal);
        // Parse the template once, now — later evaluations only bind params.
        VP_RETURN_IF_ERROR(vdt->EnsurePrepared());
        dataflow::Operator* raw = graph.Add(std::move(vdt), nullptr);
        raw->data_entry = d.name;
        graph.RegisterSignalProducer(side.output_signal, raw);
        out.vdts.push_back(raw);
      }
      pipeline.side_queries.clear();
    }
    if (split == total) {
      fully_rewritten[i] = true;
      pipelines[i] = pipeline;
    }

    // ---- Client part ----
    dataflow::Operator* head = nullptr;
    if (fetch_needed) {
      if (parent_[i] >= 0 && split == 0) {
        // Continue from the parent's client-side output.
        auto it = client_tails.find(d.source);
        if (it == client_tails.end()) {
          return Status::InvalidArgument("plan build: entry '" + d.name +
                                         "' needs client output of '" + d.source +
                                         "' which was consolidated away");
        }
        head = graph.Add(std::make_unique<dataflow::RelayOp>(), it->second);
      } else {
        // Fetch the prefix output (split==0 on a root fetches raw data).
        auto vdt = std::make_unique<VdtOp>(RenderPipelineSql(pipeline),
                                           pipeline.derived, service);
        VP_RETURN_IF_ERROR(vdt->EnsurePrepared());
        head = graph.Add(std::move(vdt), nullptr);
        out.vdts.push_back(head);
      }
      head->data_entry = d.name;

      dataflow::Operator* prev = head;
      for (int t = split; t < total; ++t) {
        VP_ASSIGN_OR_RETURN(std::unique_ptr<dataflow::Operator> op,
                            spec::BuildTransformOp(d.transforms[static_cast<size_t>(t)]));
        dataflow::Operator* raw = graph.Add(std::move(op), prev);
        raw->data_entry = d.name;
        if (auto* extent = dynamic_cast<transforms::ExtentOp*>(raw)) {
          graph.RegisterSignalProducer(extent->output_signal(), raw);
        }
        out.client_ops.push_back(raw);
        prev = raw;
      }
      client_tails[d.name] = prev;
      out.entry_tails[d.name] = prev;
      prev->client_reserved = reserved_.count(d.name) > 0;
    }

    // ---- Placement metadata ----
    for (int t = 0; t < total; ++t) {
      OpPlacement p;
      p.entry = d.name;
      p.type = d.transforms[static_cast<size_t>(t)].type;
      p.index = t;
      p.on_server = t < split;
      out.placements.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace rewrite
}  // namespace vegaplus
