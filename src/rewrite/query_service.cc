#include "rewrite/query_service.h"

#include "expr/sql_translator.h"

namespace vegaplus {
namespace rewrite {

Result<QueryResponse> QueryTicket::Await() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool QueryTicket::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_ || delivery_decided_) return false;
  cancel_requested_ = true;
  if (!executing_) {
    // Never started: resolve right away so Await() does not block on a
    // request no worker will ever pick up after the service drops it.
    done_ = true;
    response_ = Status::Cancelled("query superseded before execution");
    cv_.notify_all();
  }
  return true;
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

bool QueryTicket::cancel_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancel_requested_;
}

QueryTicketPtr QueryTicket::Ready(Result<QueryResponse> response, uint64_t generation) {
  auto ticket = std::make_shared<QueryTicket>(generation);
  ticket->done_ = true;
  ticket->response_ = std::move(response);
  return ticket;
}

bool QueryTicket::BeginExecution() {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_ || cancel_requested_) return false;
  executing_ = true;
  return true;
}

bool QueryTicket::CommitDelivery() {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_ || delivery_decided_) return false;
  delivery_decided_ = true;
  deliver_response_ = !cancel_requested_;
  return deliver_response_;
}

void QueryTicket::Deliver(Result<QueryResponse> response) {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_) return;
  done_ = true;
  // Without a prior CommitDelivery (convenience paths), decide here.
  if (!delivery_decided_) deliver_response_ = !cancel_requested_;
  response_ = deliver_response_
                  ? std::move(response)
                  : Result<QueryResponse>(Status::Cancelled("query superseded"));
  cv_.notify_all();
}

QueryService::AdapterState& QueryService::adapter() {
  std::lock_guard<std::mutex> lock(adapter_init_mu_);
  if (!adapter_) adapter_ = std::make_unique<AdapterState>();
  return *adapter_;
}

Result<PreparedHandle> QueryService::Prepare(const std::string& sql_template) {
  AdapterState& state = adapter();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.by_text.find(sql_template);
  if (it != state.by_text.end()) return it->second;
  state.templates.push_back(sql_template);
  PreparedHandle handle = static_cast<PreparedHandle>(state.templates.size());
  state.by_text.emplace(sql_template, handle);
  return handle;
}

QueryTicketPtr QueryService::Submit(const QueryRequest& request) {
  AdapterState& state = adapter();
  std::string sql_template;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (request.handle == 0 || request.handle > state.templates.size()) {
      return QueryTicket::Ready(
          Status::InvalidArgument("query service: unknown prepared handle"),
          request.generation);
    }
    sql_template = state.templates[request.handle - 1];
  }
  ParamResolver resolver(request.params);
  auto sql = expr::FillSqlHoles(sql_template, resolver);
  if (!sql.ok()) return QueryTicket::Ready(sql.status(), request.generation);
  return QueryTicket::Ready(Execute(*sql), request.generation);
}

}  // namespace rewrite
}  // namespace vegaplus
