#include "rewrite/query_service.h"

namespace vegaplus {
namespace rewrite {

Result<QueryResponse> QueryTicket::Await() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

Result<QueryResponse> QueryTicket::Await(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return done_; })) {
    // Timed out: the request stays in flight (no cancellation), so a later
    // Await can still observe the result once it lands.
    return Status::DeadlineExceeded("Await timed out; request still in flight");
  }
  return response_;
}

bool QueryTicket::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_ || delivery_decided_) return false;
  cancel_requested_ = true;
  if (cancel_token_) cancel_token_->Cancel();
  if (!executing_) {
    // Never started: resolve right away so Await() does not block on a
    // request no worker will ever pick up after the service drops it.
    done_ = true;
    response_ = Status::Cancelled("query superseded before execution");
    cv_.notify_all();
  }
  return true;
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

bool QueryTicket::cancel_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancel_requested_;
}

QueryTicketPtr QueryTicket::Ready(Result<QueryResponse> response, uint64_t generation) {
  auto ticket = std::make_shared<QueryTicket>(generation);
  ticket->done_ = true;
  ticket->response_ = std::move(response);
  return ticket;
}

void QueryTicket::LinkCancel(std::shared_ptr<common::CancelToken> token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (token && cancel_requested_) token->Cancel();
  cancel_token_ = std::move(token);
}

bool QueryTicket::BeginExecution() {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_ || cancel_requested_) return false;
  executing_ = true;
  return true;
}

bool QueryTicket::CommitDelivery() {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_ || delivery_decided_) return false;
  delivery_decided_ = true;
  deliver_response_ = !cancel_requested_;
  return deliver_response_;
}

void QueryTicket::Deliver(Result<QueryResponse> response) {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_) return;
  done_ = true;
  // Without a prior CommitDelivery (convenience paths), decide here.
  if (!delivery_decided_) deliver_response_ = !cancel_requested_;
  response_ = deliver_response_
                  ? std::move(response)
                  : Result<QueryResponse>(Status::Cancelled("query superseded"));
  cv_.notify_all();
}

Result<QueryResponse> QueryService::Execute(const std::string& sql) {
  // Deprecated shim: one front door. The string is prepared as a
  // parameterless template and pushed through the async path synchronously.
  VP_ASSIGN_OR_RETURN(PreparedHandle handle, Prepare(sql));
  QueryRequest request;
  request.handle = handle;
  QueryTicketPtr ticket = Submit(request);
  if (!ticket) {
    return Status::RuntimeError("query service: Submit returned no ticket");
  }
  return ticket->Await();
}

}  // namespace rewrite
}  // namespace vegaplus
