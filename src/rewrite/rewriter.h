// The query rewriter (§4): turns a prefix of a data entry's transform
// pipeline into a nested SQL statement with signal holes and derived
// parameters, batching consecutive transforms into one query and splitting
// signal-producing transforms (extent) into separate side queries.
#ifndef VEGAPLUS_REWRITE_REWRITER_H_
#define VEGAPLUS_REWRITE_REWRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/operator.h"
#include "rewrite/vdt.h"
#include "spec/spec.h"
#include "sql/sql_ast.h"

namespace vegaplus {
namespace rewrite {

/// \brief Accumulated server-side pipeline state while walking a transform
/// prefix.
struct ServerPipeline {
  /// The data query so far (subquery-nested; flattened at render time).
  std::shared_ptr<sql::SelectStmt> stmt;
  /// Derived template parameters accumulated so far (bin step/start, ...).
  std::vector<DerivedParam> derived;

  struct SideQuery {
    std::string sql_template;
    std::vector<DerivedParam> derived;
    std::string output_signal;
  };
  /// Signal queries produced by extent-type transforms in the prefix.
  std::vector<SideQuery> side_queries;
};

/// Base pipeline for a root entry: SELECT * FROM table.
ServerPipeline MakeTablePipeline(const std::string& table);

/// Can this transform be rewritten to SQL? (false e.g. for filter predicates
/// using functions with no SQL equivalent -> client fallback).
bool IsRewritable(const spec::TransformSpec& ts);

/// Longest rewritable prefix of a data entry's transform list.
int RewritablePrefixLength(const spec::DataSpec& entry);

/// Extend `pipeline` with one transform. `unique_id` must be distinct per
/// call within a plan (derived-parameter hole naming).
Status ExtendPipeline(ServerPipeline* pipeline, const spec::TransformSpec& ts,
                      int unique_id);

/// Render the pipeline's current data query (flattened) to SQL text with
/// holes.
std::string RenderPipelineSql(const ServerPipeline& pipeline);

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_REWRITER_H_
