// VegaDBMSTransform (VDT): the custom dataflow operator that builds a SQL
// query from its template + current signal values, ships it through the
// middleware, and emits the result into the downstream dataflow (§4).
#ifndef VEGAPLUS_REWRITE_VDT_H_
#define VEGAPLUS_REWRITE_VDT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/operator.h"
#include "rewrite/query_service.h"

namespace vegaplus {
namespace rewrite {

/// \brief A template parameter computed from signals at query-build time
/// (e.g. bin step/start derived from the extent signal and maxbins).
struct DerivedParam {
  std::string name;  // hole name in the SQL template
  std::function<Result<expr::EvalValue>(const expr::SignalResolver&)> compute;
  /// Signals the computation reads (for dirty propagation).
  std::vector<std::string> depends_on;
};

/// Overlay resolver: base signals plus computed derived params.
class DerivedResolver : public expr::SignalResolver {
 public:
  DerivedResolver(const expr::SignalResolver& base,
                  const std::vector<DerivedParam>& derived);
  /// Eagerly compute all derived params; call before Lookup-based filling.
  Status Materialize();
  bool Lookup(const std::string& name, expr::EvalValue* out) const override;

 private:
  const expr::SignalResolver& base_;
  const std::vector<DerivedParam>& derived_;
  std::vector<std::pair<std::string, expr::EvalValue>> computed_;
};

/// \brief Data VDT: acts as a data *source* (takes no dataflow input); its
/// tuples come from the DBMS.
class VdtOp : public dataflow::Operator {
 public:
  VdtOp(std::string sql_template, std::vector<DerivedParam> derived,
        QueryService* service);

  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;

  const std::string& sql_template() const { return sql_template_; }

  /// The SQL text issued by the last evaluation (post hole-filling).
  const std::string& last_sql() const { return last_sql_; }

 protected:
  Result<std::string> BuildQuery(const expr::SignalResolver& signals);

  std::string sql_template_;
  std::vector<DerivedParam> derived_;
  QueryService* service_;
  std::string last_sql_;
};

/// \brief Signal VDT: runs a scalar-producing query (extent) and publishes
/// the result as a signal instead of tuples. Expects a single-row result
/// whose first two columns are [min, max].
class SignalVdtOp : public VdtOp {
 public:
  SignalVdtOp(std::string sql_template, std::vector<DerivedParam> derived,
              QueryService* service, std::string output_signal);

  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;

  const std::string& output_signal() const { return output_signal_; }

 private:
  std::string output_signal_;
};

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_VDT_H_
