// VegaDBMSTransform (VDT): the custom dataflow operator that binds its
// prepared SQL template with current signal values, ships the request
// through the middleware, and emits the result into the downstream dataflow
// (§4).
//
// The template is prepared (parsed) once per VDT; each evaluation only binds
// parameters, so no SQL text is rendered or parsed per interaction and the
// middleware caches on exact (statement, params) keys. Queries are submitted
// via Prefetch() ahead of the evaluation wave (see dataflow::Operator), so
// independent VDTs in one pulse overlap their round trips; a new submission
// carries a fresh generation, cancelling a superseded in-flight request.
#ifndef VEGAPLUS_REWRITE_VDT_H_
#define VEGAPLUS_REWRITE_VDT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/operator.h"
#include "rewrite/query_service.h"

namespace vegaplus {
namespace rewrite {

/// \brief A template parameter computed from signals at query-build time
/// (e.g. bin step/start derived from the extent signal and maxbins).
struct DerivedParam {
  std::string name;  // hole name in the SQL template
  std::function<Result<expr::EvalValue>(const expr::SignalResolver&)> compute;
  /// Signals the computation reads (for dirty propagation).
  std::vector<std::string> depends_on;
};

/// Signal dependencies of a (template, derived params) pair: the template's
/// holes minus derived names, plus every signal the derived computations
/// read. This is both a VDT's dataflow dirty set and its wave level input
/// (the labeler mirrors the dataflow's rank grouping with it).
std::vector<std::string> VdtSignalDeps(const std::string& sql_template,
                                       const std::vector<DerivedParam>& derived);

/// Overlay resolver: base signals plus computed derived params.
class DerivedResolver : public expr::SignalResolver {
 public:
  DerivedResolver(const expr::SignalResolver& base,
                  const std::vector<DerivedParam>& derived);
  /// Eagerly compute all derived params; call before Lookup-based filling.
  Status Materialize();
  bool Lookup(const std::string& name, expr::EvalValue* out) const override;

 private:
  const expr::SignalResolver& base_;
  const std::vector<DerivedParam>& derived_;
  std::vector<std::pair<std::string, expr::EvalValue>> computed_;
};

/// \brief Data VDT: acts as a data *source* (takes no dataflow input); its
/// tuples come from the DBMS.
class VdtOp : public dataflow::Operator {
 public:
  VdtOp(std::string sql_template, std::vector<DerivedParam> derived,
        QueryService* service);

  /// Submit this VDT's query asynchronously (called per wave by the
  /// dataflow); Evaluate() awaits it.
  void Prefetch(const expr::SignalResolver& signals) override;

  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;

  const std::string& sql_template() const { return sql_template_; }

  /// The SQL text of the last evaluation, rendered on demand from the
  /// template and last bound parameters (debug/tracing only — the execution
  /// path never renders SQL text).
  Result<std::string> LastSql() const;

  /// Interaction generation of the most recent submission.
  uint64_t generation() const { return generation_; }

  /// Prepare the template against the bound service now (otherwise it is
  /// prepared on first fetch). Lets PlanBuilder fail fast at build time.
  Status EnsurePrepared();

 protected:
  /// Materialize derived params and collect one bound value per template
  /// hole. Fails like the legacy hole-filling on unresolved names.
  Result<std::vector<QueryParam>> BuildParams(const expr::SignalResolver& signals);

  /// Prepare the template on first use; then submit-or-reuse the prefetched
  /// ticket and await the response.
  Result<QueryResponse> Fetch(const expr::SignalResolver& signals);

  std::string sql_template_;
  std::vector<DerivedParam> derived_;
  QueryService* service_;
  std::vector<std::string> param_names_;  // template holes
  PreparedHandle handle_ = 0;
  /// Process-unique supersession scope: only this VDT's own submissions
  /// relate by generation (statement handles are deduplicated service-wide,
  /// so distinct VDTs can share one handle and must not cancel each other).
  uint64_t client_id_ = 0;
  uint64_t generation_ = 0;
  QueryTicketPtr pending_;
  std::vector<QueryParam> pending_params_;
  std::vector<QueryParam> last_params_;
};

/// \brief Signal VDT: runs a scalar-producing query (extent) and publishes
/// the result as a signal instead of tuples. Expects a single-row result
/// whose first two columns are [min, max].
class SignalVdtOp : public VdtOp {
 public:
  SignalVdtOp(std::string sql_template, std::vector<DerivedParam> derived,
              QueryService* service, std::string output_signal);

  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;

  const std::string& output_signal() const { return output_signal_; }

 private:
  std::string output_signal_;
};

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_VDT_H_
