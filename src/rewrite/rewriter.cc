#include "rewrite/rewriter.h"

#include "common/str_util.h"
#include "expr/parser.h"
#include "expr/sql_translator.h"
#include "rewrite/flatten.h"
#include "spec/transform_factory.h"
#include "transforms/binning.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace rewrite {

namespace {

using expr::Node;
using expr::NodePtr;
using sql::SelectItem;
using sql::SelectStmt;
using transforms::FieldRef;

// Column node for a (possibly signal-driven) field.
NodePtr FieldNode(const FieldRef& f) {
  if (f.is_signal()) {
    return Node::Call("__sigfield", {Node::Identifier(f.signal)});
  }
  return Node::Member(Node::Identifier("datum"), f.field);
}

// Wrap the current statement as a subquery of a fresh SELECT.
std::shared_ptr<SelectStmt> WrapSubquery(const std::shared_ptr<SelectStmt>& inner) {
  auto outer = std::make_shared<SelectStmt>();
  outer->from.subquery = inner;
  outer->from.alias = "t";
  return outer;
}

SelectItem StarItem() {
  SelectItem item;
  item.kind = SelectItem::Kind::kStar;
  return item;
}

SelectItem ExprItem(NodePtr e, std::string alias) {
  SelectItem item;
  item.kind = SelectItem::Kind::kExpr;
  item.expr = std::move(e);
  item.alias = std::move(alias);
  return item;
}

sql::AggOp ToSqlAgg(transforms::VegaAggOp op) {
  switch (op) {
    case transforms::VegaAggOp::kCount: return sql::AggOp::kCount;
    case transforms::VegaAggOp::kValid: return sql::AggOp::kCount;
    case transforms::VegaAggOp::kSum: return sql::AggOp::kSum;
    case transforms::VegaAggOp::kMean: return sql::AggOp::kAvg;
    case transforms::VegaAggOp::kMin: return sql::AggOp::kMin;
    case transforms::VegaAggOp::kMax: return sql::AggOp::kMax;
    case transforms::VegaAggOp::kMedian: return sql::AggOp::kMedian;
    case transforms::VegaAggOp::kStdev: return sql::AggOp::kStddev;
  }
  return sql::AggOp::kCount;
}

// Derived bin params: start/step computed from the extent signal (+ maxbins
// signal) at query-build time — "the bin's step size is calculated to
// complete the query string" (Example 4.1).
void AddBinDerivedParams(const transforms::BinOp::Params& p, const std::string& prefix,
                         std::vector<DerivedParam>* derived) {
  auto compute = [p](const expr::SignalResolver& signals,
                     bool want_step) -> Result<expr::EvalValue> {
    expr::EvalValue extent;
    if (!signals.Lookup(p.extent_signal, &extent) || !extent.is_array() ||
        extent.array().size() < 2) {
      return Status::KeyError("bin: extent signal '" + p.extent_signal +
                              "' missing or malformed");
    }
    int maxbins = p.maxbins;
    if (!p.maxbins_signal.empty()) {
      expr::EvalValue mb;
      if (signals.Lookup(p.maxbins_signal, &mb) && !mb.is_array() &&
          mb.scalar().is_numeric()) {
        maxbins = static_cast<int>(mb.scalar().AsDouble());
      }
    }
    transforms::Binning bin = transforms::ComputeBinning(
        extent.array()[0].AsDouble(), extent.array()[1].AsDouble(), maxbins);
    return expr::EvalValue::Number(want_step ? bin.step : bin.start);
  };
  std::vector<std::string> deps{p.extent_signal};
  if (!p.maxbins_signal.empty()) deps.push_back(p.maxbins_signal);
  derived->push_back(
      {prefix + "_start",
       [compute](const expr::SignalResolver& s) { return compute(s, false); }, deps});
  derived->push_back(
      {prefix + "_step",
       [compute](const expr::SignalResolver& s) { return compute(s, true); }, deps});
}

}  // namespace

ServerPipeline MakeTablePipeline(const std::string& table) {
  ServerPipeline p;
  p.stmt = std::make_shared<SelectStmt>();
  p.stmt->items.push_back(StarItem());
  p.stmt->from.table_name = table;
  return p;
}

bool IsRewritable(const spec::TransformSpec& ts) {
  // Structural types always rewrite; expression-bearing types rewrite iff
  // their expression translates to SQL.
  if (ts.type == "extent" || ts.type == "bin" || ts.type == "aggregate" ||
      ts.type == "collect" || ts.type == "project" || ts.type == "stack" ||
      ts.type == "timeunit") {
    return true;
  }
  if (ts.type == "filter" || ts.type == "formula") {
    const json::Value* e = ts.params.Find("expr");
    if (e == nullptr || !e->is_string()) return false;
    auto parsed = expr::ParseExpression(e->AsString());
    if (!parsed.ok()) return false;
    return expr::TranslateToSql(*parsed).ok();
  }
  return false;
}

int RewritablePrefixLength(const spec::DataSpec& entry) {
  int n = 0;
  for (const auto& ts : entry.transforms) {
    if (!IsRewritable(ts)) break;
    ++n;
  }
  return n;
}

Status ExtendPipeline(ServerPipeline* pipeline, const spec::TransformSpec& ts,
                      int unique_id) {
  // Normalize params by instantiating the client operator and reading back
  // its typed parameters (single source of truth for parsing).
  VP_ASSIGN_OR_RETURN(std::unique_ptr<dataflow::Operator> built,
                      spec::BuildTransformOp(ts));

  if (auto* op = dynamic_cast<transforms::FilterOp*>(built.get())) {
    VP_RETURN_IF_ERROR(expr::TranslateToSql(op->predicate()).status());
    auto outer = WrapSubquery(pipeline->stmt);
    outer->items.push_back(StarItem());
    outer->where = op->predicate();
    FlattenStmt(outer.get());
    pipeline->stmt = outer;
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::ExtentOp*>(built.get())) {
    auto q = WrapSubquery(pipeline->stmt);
    SelectItem mn;
    mn.kind = SelectItem::Kind::kAggregate;
    mn.agg_op = sql::AggOp::kMin;
    mn.agg_arg = FieldNode(op->field());
    mn.alias = "min0";
    SelectItem mx = mn;
    mx.agg_op = sql::AggOp::kMax;
    mx.alias = "max0";
    q->items.push_back(std::move(mn));
    q->items.push_back(std::move(mx));
    FlattenStmt(q.get());
    ServerPipeline::SideQuery side;
    side.sql_template = sql::ToSql(*q);
    side.derived = pipeline->derived;
    side.output_signal = op->output_signal();
    pipeline->side_queries.push_back(std::move(side));
    // Data path passes through unchanged.
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::BinOp*>(built.get())) {
    const auto& p = op->params();
    std::string prefix = StrFormat("__d%d", unique_id);
    AddBinDerivedParams(p, prefix, &pipeline->derived);
    NodePtr start = Node::Identifier(prefix + "_start");
    NodePtr step = Node::Identifier(prefix + "_step");
    NodePtr fld = FieldNode(p.field);
    // bin0 = start + FLOOR((fld - start) / step) * step
    NodePtr bin0 = Node::Binary(
        expr::BinaryOp::kAdd, start,
        Node::Binary(expr::BinaryOp::kMul,
                     Node::Call("floor", {Node::Binary(
                                             expr::BinaryOp::kDiv,
                                             Node::Binary(expr::BinaryOp::kSub, fld, start),
                                             step)}),
                     step));
    NodePtr bin1 = Node::Binary(expr::BinaryOp::kAdd, bin0, step);
    auto outer = WrapSubquery(pipeline->stmt);
    outer->items.push_back(StarItem());
    outer->items.push_back(ExprItem(bin0, p.as0));
    outer->items.push_back(ExprItem(bin1, p.as1));
    pipeline->stmt = outer;  // projection extensions flatten later (R2)
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::AggregateOp*>(built.get())) {
    const auto& p = op->params();
    auto outer = WrapSubquery(pipeline->stmt);
    for (const FieldRef& g : p.groupby) {
      NodePtr node = FieldNode(g);
      outer->group_by.push_back(node);
      // Fixed fields are aliased explicitly so flattening (which may inline
      // a computed column like bin0 into the grouping expression) preserves
      // the output column name. Dynamic fields resolve at fill time (the
      // filled column ref carries the name).
      outer->items.push_back(ExprItem(node, g.is_signal() ? "" : g.field));
    }
    for (size_t i = 0; i < p.ops.size(); ++i) {
      SelectItem item;
      item.kind = SelectItem::Kind::kAggregate;
      item.agg_op = ToSqlAgg(p.ops[i]);
      bool has_field = i < p.fields.size() &&
                       (!p.fields[i].field.empty() || p.fields[i].is_signal());
      // Vega "count" ignores its field; "valid" counts non-null of a field.
      if (p.ops[i] == transforms::VegaAggOp::kCount) {
        item.agg_arg = nullptr;
      } else if (has_field) {
        item.agg_arg = FieldNode(p.fields[i]);
      } else {
        item.agg_arg = nullptr;
        item.agg_op = sql::AggOp::kCount;
      }
      item.alias = p.as[i];
      outer->items.push_back(std::move(item));
    }
    FlattenStmt(outer.get());
    pipeline->stmt = outer;
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::CollectOp*>(built.get())) {
    std::shared_ptr<SelectStmt> target = CloneStmt(*pipeline->stmt);
    if (!target->order_by.empty() || target->limit >= 0) {
      target = WrapSubquery(target);
      target->items.push_back(StarItem());
    }
    for (const auto& k : op->keys()) {
      sql::OrderItem item;
      item.expr = FieldNode(k.field);
      item.descending = k.descending;
      target->order_by.push_back(std::move(item));
    }
    pipeline->stmt = target;
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::ProjectOp*>(built.get())) {
    auto outer = WrapSubquery(pipeline->stmt);
    for (size_t i = 0; i < op->fields().size(); ++i) {
      std::string alias = i < op->as().size() ? op->as()[i] : "";
      outer->items.push_back(ExprItem(FieldNode(op->fields()[i]), alias));
    }
    FlattenStmt(outer.get());
    pipeline->stmt = outer;
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::StackOp*>(built.get())) {
    const auto& p = op->params();
    NodePtr fld = FieldNode(p.field);
    // Level 1: running inclusive sum as as1.
    auto level1 = WrapSubquery(pipeline->stmt);
    level1->items.push_back(StarItem());
    SelectItem win;
    win.kind = SelectItem::Kind::kWindow;
    win.window.op = sql::WindowOp::kSum;
    win.window.arg = fld;
    for (const FieldRef& g : p.groupby) win.window.partition_by.push_back(FieldNode(g));
    for (const auto& k : p.sort) {
      sql::OrderItem item;
      item.expr = FieldNode(k.field);
      item.descending = k.descending;
      win.window.order_by.push_back(std::move(item));
    }
    win.alias = p.as1;
    level1->items.push_back(std::move(win));
    // Level 2: as0 = as1 - field.
    auto level2 = WrapSubquery(level1);
    level2->items.push_back(StarItem());
    level2->items.push_back(ExprItem(
        Node::Binary(expr::BinaryOp::kSub,
                     Node::Member(Node::Identifier("datum"), p.as1), fld),
        p.as0));
    pipeline->stmt = level2;
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::TimeunitOp*>(built.get())) {
    const auto& p = op->params();
    NodePtr fld = FieldNode(p.field);
    NodePtr unit = Node::Literal(data::Value::String(p.unit));
    auto outer = WrapSubquery(pipeline->stmt);
    outer->items.push_back(StarItem());
    outer->items.push_back(ExprItem(Node::Call("date_trunc", {unit, fld}), p.as0));
    outer->items.push_back(ExprItem(Node::Call("date_unit_end", {unit, fld}), p.as1));
    pipeline->stmt = outer;
    return Status::OK();
  }

  if (auto* op = dynamic_cast<transforms::FormulaOp*>(built.get())) {
    VP_RETURN_IF_ERROR(expr::TranslateToSql(op->expression()).status());
    auto outer = WrapSubquery(pipeline->stmt);
    outer->items.push_back(StarItem());
    outer->items.push_back(ExprItem(op->expression(), op->as()));
    pipeline->stmt = outer;
    return Status::OK();
  }

  return Status::NotImplemented("rewrite: transform '" + ts.type +
                                "' has no SQL rewriting");
}

std::string RenderPipelineSql(const ServerPipeline& pipeline) {
  auto copy = CloneStmt(*pipeline.stmt);
  FlattenStmt(copy.get());
  return sql::ToSql(*copy);
}

}  // namespace rewrite
}  // namespace vegaplus
