#include "rewrite/tile_shape.h"

#include <algorithm>
#include <cctype>

namespace vegaplus {
namespace rewrite {

namespace {

using expr::BinaryOp;
using expr::Node;
using expr::NodeKind;
using expr::NodePtr;
using sql::AggOp;
using sql::SelectItem;
using sql::SelectStmt;

bool NumericLiteral(const NodePtr& node, double* v) {
  if (node == nullptr) return false;
  if (node->kind == NodeKind::kUnary && node->unary_op == expr::UnaryOp::kNeg) {
    double inner;
    if (!NumericLiteral(node->a, &inner)) return false;
    *v = -inner;
    return true;
  }
  if (node->kind != NodeKind::kLiteral || !node->literal.is_numeric()) {
    return false;
  }
  *v = node->literal.AsDouble();
  return true;
}

bool DatumMember(const NodePtr& node, std::string* column) {
  if (node == nullptr || node->kind != NodeKind::kMember) return false;
  if (node->a == nullptr || node->a->kind != NodeKind::kIdentifier ||
      node->a->name != "datum") {
    return false;
  }
  *column = node->name;
  return true;
}

/// Fold one comparison conjunct into the shape's brush bounds.
bool FoldRangePredicate(const NodePtr& node, TileShape* shape) {
  if (node == nullptr || node->kind != NodeKind::kBinary) return false;
  BinaryOp op = node->binary_op;
  std::string column;
  double bound;
  bool column_on_left;
  if (DatumMember(node->a, &column) && NumericLiteral(node->b, &bound)) {
    column_on_left = true;
  } else if (NumericLiteral(node->a, &bound) && DatumMember(node->b, &column)) {
    column_on_left = false;
  } else {
    return false;
  }
  if (column != shape->bin_column) return false;
  // Normalize to "column OP bound".
  if (!column_on_left) {
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLte: op = BinaryOp::kGte; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGte: op = BinaryOp::kLte; break;
      default: return false;
    }
  }
  switch (op) {
    case BinaryOp::kGt:
    case BinaryOp::kGte:
      if (shape->has_lower) return false;  // one lower bound only
      shape->has_lower = true;
      shape->lower_strict = op == BinaryOp::kGt;
      shape->lower = bound;
      return true;
    case BinaryOp::kLt:
    case BinaryOp::kLte:
      if (shape->has_upper) return false;
      shape->has_upper = true;
      shape->upper_strict = op == BinaryOp::kLt;
      shape->upper = bound;
      return true;
    default:
      return false;
  }
}

bool FoldWhere(const NodePtr& node, TileShape* shape) {
  if (node == nullptr) return true;
  if (node->kind == NodeKind::kBinary && node->binary_op == BinaryOp::kAnd) {
    return FoldWhere(node->a, shape) && FoldWhere(node->b, shape);
  }
  return FoldRangePredicate(node, shape);
}

}  // namespace

bool MatchBinExpr(const NodePtr& node, std::string* column, double* start,
                  double* step) {
  // A + (floor((datum.col - A) / S) * S)
  if (node == nullptr || node->kind != NodeKind::kBinary ||
      node->binary_op != BinaryOp::kAdd) {
    return false;
  }
  double a0;
  if (!NumericLiteral(node->a, &a0)) return false;
  const NodePtr& mul = node->b;
  if (mul == nullptr || mul->kind != NodeKind::kBinary ||
      mul->binary_op != BinaryOp::kMul) {
    return false;
  }
  double s0;
  if (!NumericLiteral(mul->b, &s0) || !(s0 > 0)) return false;
  const NodePtr& call = mul->a;
  if (call == nullptr || call->kind != NodeKind::kCall ||
      call->args.size() != 1) {
    return false;
  }
  std::string fn = call->name;
  std::transform(fn.begin(), fn.end(), fn.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (fn != "floor") return false;
  const NodePtr& div = call->args[0];
  if (div == nullptr || div->kind != NodeKind::kBinary ||
      div->binary_op != BinaryOp::kDiv) {
    return false;
  }
  double s1;
  if (!NumericLiteral(div->b, &s1) || s1 != s0) return false;
  const NodePtr& sub = div->a;
  if (sub == nullptr || sub->kind != NodeKind::kBinary ||
      sub->binary_op != BinaryOp::kSub) {
    return false;
  }
  double a1;
  if (!NumericLiteral(sub->b, &a1) || a1 != a0) return false;
  if (!DatumMember(sub->a, column)) return false;
  *start = a0;
  *step = s0;
  return true;
}

bool MatchTileShape(const SelectStmt& stmt, TileShape* out) {
  TileShape shape;
  if (stmt.from.subquery != nullptr || stmt.from.table_name.empty()) return false;
  shape.table = stmt.from.table_name;
  if (stmt.having != nullptr || !stmt.order_by.empty() || stmt.limit >= 0 ||
      stmt.offset != 0) {
    return false;
  }

  // ---- Group keys ----
  std::string bin0_text;
  std::string bin1_text;
  std::string key_text;
  if (stmt.group_by.size() == 2) {
    if (!MatchBinExpr(stmt.group_by[0], &shape.bin_column, &shape.start,
                      &shape.step)) {
      return false;
    }
    // bin1 = bin0 + step, with a structurally identical bin0.
    const NodePtr& g1 = stmt.group_by[1];
    if (g1 == nullptr || g1->kind != NodeKind::kBinary ||
        g1->binary_op != BinaryOp::kAdd) {
      return false;
    }
    double s;
    if (!NumericLiteral(g1->b, &s) || s != shape.step) return false;
    if (expr::ToString(g1->a) != expr::ToString(stmt.group_by[0])) return false;
    shape.has_bin1 = true;
    bin0_text = expr::ToString(stmt.group_by[0]);
    bin1_text = expr::ToString(g1);
  } else if (stmt.group_by.size() == 1) {
    if (MatchBinExpr(stmt.group_by[0], &shape.bin_column, &shape.start,
                     &shape.step)) {
      bin0_text = expr::ToString(stmt.group_by[0]);
    } else if (DatumMember(stmt.group_by[0], &shape.bin_column)) {
      shape.categorical = true;
      key_text = expr::ToString(stmt.group_by[0]);
    } else {
      return false;
    }
  } else {
    // No GROUP BY (scalar aggregates) is deliberately not covered: those
    // queries are cheap relative to a tile build and other suites pin their
    // execution-source expectations.
    return false;
  }

  // ---- WHERE ----
  if (stmt.where != nullptr) {
    // Brushes are only covered on the numeric binned column.
    if (shape.categorical) return false;
    if (!FoldWhere(stmt.where, &shape)) return false;
  }

  // ---- Select items ----
  for (const SelectItem& item : stmt.items) {
    TileShape::Item entry;
    switch (item.kind) {
      case SelectItem::Kind::kExpr: {
        const std::string text = expr::ToString(item.expr);
        if (!bin0_text.empty() && text == bin0_text) {
          entry.kind = TileShape::Item::Kind::kBin0;
        } else if (!bin1_text.empty() && text == bin1_text) {
          entry.kind = TileShape::Item::Kind::kBin1;
        } else if (!key_text.empty() && text == key_text) {
          entry.kind = TileShape::Item::Kind::kKey;
        } else {
          return false;
        }
        break;
      }
      case SelectItem::Kind::kAggregate: {
        entry.kind = TileShape::Item::Kind::kAggregate;
        entry.op = item.agg_op;
        switch (item.agg_op) {
          case AggOp::kCount:
          case AggOp::kSum:
          case AggOp::kAvg:
          case AggOp::kMin:
          case AggOp::kMax:
            break;
          default:
            return false;  // median/stddev/variance: not in tile slots
        }
        if (item.agg_arg == nullptr) {
          if (item.agg_op != AggOp::kCount) return false;
          entry.count_star = true;
        } else if (!DatumMember(item.agg_arg, &entry.agg_column)) {
          return false;
        }
        break;
      }
      default:
        return false;  // '*' or window items
    }
    shape.items.push_back(entry);
  }
  if (shape.items.empty()) return false;

  *out = std::move(shape);
  return true;
}

}  // namespace rewrite
}  // namespace vegaplus
