#include "rewrite/flatten.h"

#include <map>

namespace vegaplus {
namespace rewrite {

namespace {

using expr::Node;
using expr::NodeKind;
using expr::NodePtr;
using sql::SelectItem;
using sql::SelectStmt;

bool IsColumnRef(const NodePtr& node, std::string* name) {
  if (node && node->kind == NodeKind::kMember && node->a &&
      node->a->kind == NodeKind::kIdentifier && node->a->name == "datum") {
    *name = node->name;
    return true;
  }
  return false;
}

// Sub is "SELECT * FROM X [WHERE c]" with nothing else?
bool IsPassthroughFilter(const SelectStmt& sub) {
  return sub.items.size() == 1 && sub.items[0].kind == SelectItem::Kind::kStar &&
         sub.group_by.empty() && sub.having == nullptr && sub.order_by.empty() &&
         sub.limit < 0 && sub.offset == 0;
}

// Sub is "SELECT *, e1 AS n1, ... FROM X" with nothing else? Collect the
// computed items.
bool IsProjectionExtension(const SelectStmt& sub,
                           std::map<std::string, NodePtr>* computed) {
  if (sub.where != nullptr || !sub.group_by.empty() || sub.having != nullptr ||
      !sub.order_by.empty() || sub.limit >= 0 || sub.offset != 0) {
    return false;
  }
  if (sub.items.empty() || sub.items[0].kind != SelectItem::Kind::kStar) return false;
  for (size_t i = 1; i < sub.items.size(); ++i) {
    const SelectItem& item = sub.items[i];
    if (item.kind != SelectItem::Kind::kExpr || item.alias.empty()) return false;
    (*computed)[item.alias] = item.expr;
  }
  return true;
}

void SubstituteInStmt(SelectStmt* stmt, const std::map<std::string, NodePtr>& bindings) {
  auto subst = [&bindings](const NodePtr& e) {
    NodePtr out = e;
    for (const auto& [name, replacement] : bindings) {
      out = SubstituteColumn(out, name, replacement);
    }
    return out;
  };
  for (SelectItem& item : stmt->items) {
    if (item.expr) item.expr = subst(item.expr);
    if (item.agg_arg) item.agg_arg = subst(item.agg_arg);
    if (item.window.arg) item.window.arg = subst(item.window.arg);
    for (auto& p : item.window.partition_by) p = subst(p);
    for (auto& o : item.window.order_by) o.expr = subst(o.expr);
  }
  if (stmt->where) stmt->where = subst(stmt->where);
  for (auto& g : stmt->group_by) g = subst(g);
  if (stmt->having) stmt->having = subst(stmt->having);
  for (auto& o : stmt->order_by) o.expr = subst(o.expr);
}

// Does the outer statement reference any column NOT produced by substituting
// the computed items — i.e. does it use `*`? A SELECT * outer cannot inline a
// projection extension without changing its output schema.
bool OuterHasStar(const SelectStmt& stmt) {
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kStar) return true;
  }
  return false;
}

}  // namespace

expr::NodePtr SubstituteColumn(const NodePtr& node, const std::string& name,
                               const NodePtr& replacement) {
  if (!node) return node;
  std::string col;
  if (IsColumnRef(node, &col) && col == name) return replacement;
  // Rebuild children when any changed.
  auto copy = std::make_shared<Node>(*node);
  bool changed = false;
  auto visit = [&](const NodePtr& child) {
    NodePtr out = SubstituteColumn(child, name, replacement);
    if (out != child) changed = true;
    return out;
  };
  copy->a = visit(node->a);
  copy->b = visit(node->b);
  copy->c = visit(node->c);
  for (size_t i = 0; i < copy->args.size(); ++i) {
    copy->args[i] = visit(node->args[i]);
  }
  return changed ? NodePtr(copy) : node;
}

std::shared_ptr<SelectStmt> CloneStmt(const SelectStmt& stmt) {
  auto copy = std::make_shared<SelectStmt>(stmt);
  if (stmt.from.subquery) {
    copy->from.subquery = CloneStmt(*stmt.from.subquery);
  }
  return copy;
}

void FlattenStmt(SelectStmt* stmt) {
  if (!stmt->from.subquery) return;
  // Flatten the subquery first (bottom-up).
  auto sub = CloneStmt(*stmt->from.subquery);
  FlattenStmt(sub.get());
  stmt->from.subquery = sub;

  bool changed = true;
  while (changed && stmt->from.subquery) {
    changed = false;
    const SelectStmt& inner = *stmt->from.subquery;

    // R1: merge a pass-through filter subquery.
    if (IsPassthroughFilter(inner)) {
      sql::TableRef new_from = inner.from;
      expr::NodePtr inner_where = inner.where;
      if (inner_where) {
        stmt->where = stmt->where
                          ? Node::Binary(expr::BinaryOp::kAnd, inner_where, stmt->where)
                          : inner_where;
      }
      stmt->from = new_from;
      changed = true;
      continue;
    }

    // R2: inline a projection-extension subquery (bin/formula/timeunit).
    std::map<std::string, NodePtr> computed;
    if (!OuterHasStar(*stmt) && IsProjectionExtension(inner, &computed) &&
        !computed.empty()) {
      sql::TableRef new_from = inner.from;
      SubstituteInStmt(stmt, computed);
      stmt->from = new_from;
      changed = true;
      continue;
    }
  }
}

}  // namespace rewrite
}  // namespace vegaplus
