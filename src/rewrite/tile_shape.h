// Tile shape detection: recognizes the post-flatten bin+aggregate SELECT
// statements the VDT rewriter emits for histograms and categorical bar
// charts — the shapes the middleware tile store can answer from
// precomputed per-bin aggregates instead of scanning base rows.
//
// Covered (numeric histogram, the bin+extent+GROUP BY template):
//
//   SELECT <bin0> AS b0, <bin1> AS b1, AGG(...)... FROM t
//   [WHERE range-conjunction over the bin column]
//   GROUP BY <bin0>, <bin1>
//
// where bin0 = A + floor((datum.col - A) / S) * S and bin1 = bin0 + S with
// A/S already bound to literals (BindStatement has run). Covered
// (categorical bar chart):
//
//   SELECT datum.col, AGG(...)... FROM t GROUP BY datum.col
//
// Aggregates may be COUNT(*)/COUNT(col)/SUM/AVG/MIN/MAX over a plain
// datum.<col>. Anything else — HAVING, ORDER BY, LIMIT/OFFSET, subquery
// FROM, extra WHERE conjuncts, computed aggregate arguments — is not a tile
// shape; the caller falls back to base-table execution (which is always
// bit-identical by definition).
#ifndef VEGAPLUS_REWRITE_TILE_SHAPE_H_
#define VEGAPLUS_REWRITE_TILE_SHAPE_H_

#include <string>
#include <vector>

#include "expr/ast.h"
#include "sql/sql_ast.h"

namespace vegaplus {
namespace rewrite {

struct TileShape {
  std::string table;
  /// Numeric form: the binned column. Categorical form: the group key.
  std::string bin_column;
  bool categorical = false;
  /// Numeric form only: the bound bin parameters.
  double start = 0;
  double step = 0;
  /// Whether the statement groups by (bin0, bin1) or bin0 alone.
  bool has_bin1 = false;

  /// Range brush over the bin column (numeric form): at most one lower and
  /// one upper bound, ANDed. Absent bounds leave has_* false.
  bool has_lower = false;
  bool lower_strict = false;
  double lower = 0;
  bool has_upper = false;
  bool upper_strict = false;
  double upper = 0;

  /// One entry per SELECT item, in statement order.
  struct Item {
    enum class Kind { kBin0, kBin1, kKey, kAggregate };
    Kind kind = Kind::kAggregate;
    sql::AggOp op = sql::AggOp::kCount;
    bool count_star = false;
    /// Aggregate argument column (empty for COUNT(*)).
    std::string agg_column;
  };
  std::vector<Item> items;
};

/// Recognize `A + floor((datum.col - A) / S) * S` with literal A/S (S > 0).
/// Exposed for the tile store's level matching and for tests.
bool MatchBinExpr(const expr::NodePtr& node, std::string* column,
                  double* start, double* step);

/// Match a bound statement against the covered tile shapes. Returns false
/// (leaving `out` unspecified) when the statement is not covered.
bool MatchTileShape(const sql::SelectStmt& stmt, TileShape* out);

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_TILE_SHAPE_H_
