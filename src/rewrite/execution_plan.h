// ExecutionPlan: one way to partition a spec's dataflow between client and
// server (§5.2). For every data entry, a split point: how many of its
// leading transforms run as SQL on the DBMS; the rest run in the client
// dataflow. "All operations upstream to the split point are executed on the
// server, and all that are downstream should be on the client."
#ifndef VEGAPLUS_REWRITE_EXECUTION_PLAN_H_
#define VEGAPLUS_REWRITE_EXECUTION_PLAN_H_

#include <string>
#include <vector>

namespace vegaplus {
namespace rewrite {

struct ExecutionPlan {
  /// Parallel to VegaSpec::data: splits[i] = number of leading transforms of
  /// entry i executed server-side.
  std::vector<int> splits;

  /// Stable identity string, e.g. "3|0|2".
  std::string Key() const {
    std::string key;
    for (size_t i = 0; i < splits.size(); ++i) {
      if (i > 0) key += '|';
      key += std::to_string(splits[i]);
    }
    return key;
  }

  bool operator==(const ExecutionPlan& other) const { return splits == other.splits; }
};

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_EXECUTION_PLAN_H_
