#include "rewrite/vdt.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "expr/sql_translator.h"

namespace vegaplus {
namespace rewrite {

// Signal deps of a VDT = holes in its template + signals its derived params
// read (the holes of derived params are the derived names themselves, which
// are not real signals).
std::vector<std::string> VdtSignalDeps(const std::string& sql_template,
                                       const std::vector<DerivedParam>& derived) {
  std::vector<std::string> deps;
  auto add = [&deps](const std::string& name) {
    if (std::find(deps.begin(), deps.end(), name) == deps.end()) deps.push_back(name);
  };
  std::vector<std::string> derived_names;
  for (const DerivedParam& d : derived) {
    derived_names.push_back(d.name);
    for (const std::string& s : d.depends_on) add(s);
  }
  for (const std::string& hole : expr::CollectHoles(sql_template)) {
    if (std::find(derived_names.begin(), derived_names.end(), hole) ==
        derived_names.end()) {
      add(hole);
    }
  }
  return deps;
}

DerivedResolver::DerivedResolver(const expr::SignalResolver& base,
                                 const std::vector<DerivedParam>& derived)
    : base_(base), derived_(derived) {}

Status DerivedResolver::Materialize() {
  computed_.clear();
  for (const DerivedParam& d : derived_) {
    VP_ASSIGN_OR_RETURN(expr::EvalValue v, d.compute(base_));
    computed_.emplace_back(d.name, std::move(v));
  }
  return Status::OK();
}

bool DerivedResolver::Lookup(const std::string& name, expr::EvalValue* out) const {
  for (const auto& [n, v] : computed_) {
    if (n == name) {
      *out = v;
      return true;
    }
  }
  return base_.Lookup(name, out);
}

VdtOp::VdtOp(std::string sql_template, std::vector<DerivedParam> derived,
             QueryService* service)
    : Operator("vdt", VdtSignalDeps(sql_template, derived)),
      sql_template_(std::move(sql_template)), derived_(std::move(derived)),
      service_(service), param_names_(expr::CollectHoles(sql_template_)) {
  static std::atomic<uint64_t> next_client_id{1};
  client_id_ = next_client_id.fetch_add(1);
}

Result<std::vector<QueryParam>> VdtOp::BuildParams(const expr::SignalResolver& signals) {
  DerivedResolver resolver(signals, derived_);
  VP_RETURN_IF_ERROR(resolver.Materialize());
  std::vector<QueryParam> params;
  params.reserve(param_names_.size());
  for (const std::string& name : param_names_) {
    expr::EvalValue value;
    if (!resolver.Lookup(name, &value)) {
      return Status::KeyError("vdt: unresolved signal '" + name + "'");
    }
    params.push_back(QueryParam{name, std::move(value)});
  }
  return params;
}

Status VdtOp::EnsurePrepared() {
  if (service_ == nullptr) return Status::InvalidArgument("vdt: no query service bound");
  if (handle_ == 0) {
    VP_ASSIGN_OR_RETURN(handle_, service_->Prepare(sql_template_));
  }
  return Status::OK();
}

void VdtOp::Prefetch(const expr::SignalResolver& signals) {
  if (service_ == nullptr || !EnsurePrepared().ok()) return;  // surfaced by Evaluate
  auto params = BuildParams(signals);
  if (!params.ok()) return;  // surfaced by Evaluate
  if (pending_ != nullptr) {
    if (pending_params_ == *params) return;  // already in flight
    pending_->Cancel();
  }
  pending_params_ = std::move(*params);
  pending_ =
      service_->Submit(QueryRequest{handle_, pending_params_, ++generation_, client_id_});
}

Result<QueryResponse> VdtOp::Fetch(const expr::SignalResolver& signals) {
  VP_RETURN_IF_ERROR(EnsurePrepared());
  VP_ASSIGN_OR_RETURN(std::vector<QueryParam> params, BuildParams(signals));
  QueryTicketPtr ticket;
  if (pending_ != nullptr && pending_params_ == params) {
    // Prefetched earlier in this wave with identical bindings.
    ticket = std::move(pending_);
  } else {
    if (pending_ != nullptr) pending_->Cancel();  // stale prefetch: superseded
    ticket = service_->Submit(QueryRequest{handle_, params, ++generation_, client_id_});
  }
  pending_ = nullptr;
  last_params_ = std::move(params);
  return ticket->Await();
}

Result<std::string> VdtOp::LastSql() const {
  ParamResolver resolver(last_params_);
  return expr::FillSqlHoles(sql_template_, resolver);
}

Result<dataflow::EvalResult> VdtOp::Evaluate(const data::TablePtr& /*input*/,
                                             const expr::SignalResolver& signals) {
  if (service_ == nullptr) return Status::InvalidArgument("vdt: no query service bound");
  VP_ASSIGN_OR_RETURN(QueryResponse response, Fetch(signals));
  dataflow::EvalResult result;
  result.table = response.table;
  // A VDT's own client-side work is negligible; the cost is the round trip.
  result.rows_processed = 0;
  result.external_millis = response.latency_millis;
  return result;
}

SignalVdtOp::SignalVdtOp(std::string sql_template, std::vector<DerivedParam> derived,
                         QueryService* service, std::string output_signal)
    : VdtOp(std::move(sql_template), std::move(derived), service),
      output_signal_(std::move(output_signal)) {
  type_ = "vdt_signal";
}

Result<dataflow::EvalResult> SignalVdtOp::Evaluate(const data::TablePtr& input,
                                                   const expr::SignalResolver& signals) {
  VP_ASSIGN_OR_RETURN(dataflow::EvalResult result, VdtOp::Evaluate(input, signals));
  if (!result.table || result.table->num_rows() < 1 ||
      result.table->num_columns() < 2) {
    return Status::RuntimeError("signal vdt: query did not return a [min, max] row");
  }
  double lo = result.table->column(0).NumericAt(0);
  double hi = result.table->column(1).NumericAt(0);
  if (std::isnan(lo)) lo = 0;
  if (std::isnan(hi)) hi = lo + 1;
  result.signal_writes.emplace_back(
      output_signal_, expr::EvalValue::Array({data::Value::Double(lo),
                                              data::Value::Double(hi)}));
  result.table = nullptr;  // signal-only operator
  return result;
}

}  // namespace rewrite
}  // namespace vegaplus
