// PlanBuilder: turn (spec, execution plan) into a runnable dataflow with
// VDTs for the server-side prefixes and ordinary transform operators for the
// client-side remainders. Implements the enumeration constraints of §5.2:
//  * split <= rewritable prefix length
//  * a child entry can continue in SQL only if its parent entry is fully
//    rewritten AND not client-reserved
//  * entries whose output nobody needs on the client skip their data fetch
//    (path consolidation: "avoid querying redundantly").
#ifndef VEGAPLUS_REWRITE_PLAN_BUILDER_H_
#define VEGAPLUS_REWRITE_PLAN_BUILDER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataflow/dataflow.h"
#include "rewrite/execution_plan.h"
#include "rewrite/query_service.h"
#include "rewrite/rewriter.h"
#include "spec/compiler.h"
#include "spec/spec.h"

namespace vegaplus {
namespace rewrite {

/// \brief Placement of one declared transform under a plan (encoder input).
struct OpPlacement {
  std::string entry;
  std::string type;    // transform type
  int index = 0;       // position within the entry
  bool on_server = false;
};

/// \brief A compiled, runnable plan.
struct PlanDataflow {
  std::unique_ptr<dataflow::Dataflow> graph;
  /// All VDT operators (data + signal) in the graph.
  std::vector<dataflow::Operator*> vdts;
  /// Client-side transform operators (excludes sources/relays/VDTs).
  std::vector<dataflow::Operator*> client_ops;
  /// Tail operator per data entry (missing when the fetch was consolidated
  /// away).
  std::map<std::string, dataflow::Operator*> entry_tails;
  /// Where each declared transform ended up.
  std::vector<OpPlacement> placements;
};

/// \brief Validates and materializes execution plans for one spec.
class PlanBuilder {
 public:
  explicit PlanBuilder(const spec::VegaSpec& spec);

  const spec::VegaSpec& spec() const { return spec_; }

  /// Rewritable prefix length per data entry (upper bound on splits).
  const std::vector<int>& max_splits() const { return max_splits_; }

  /// Entries reserved by dependency checking (must stay client-side).
  const std::set<std::string>& reserved() const { return reserved_; }

  /// The all-client plan (every split 0).
  ExecutionPlan AllClientPlan() const;

  /// The greediest pushdown plan (every split at its feasible maximum) —
  /// also the VegaFusion-style baseline policy.
  ExecutionPlan FullPushdownPlan() const;

  /// Check feasibility of `plan` under the §5.2 constraints.
  Status Validate(const ExecutionPlan& plan) const;

  /// Build the dataflow for a valid plan. `service` handles VDT queries and
  /// must outlive the returned dataflow.
  Result<PlanDataflow> Build(const ExecutionPlan& plan, QueryService* service) const;

 private:
  /// Parent index per entry (-1 for roots).
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<int> max_splits_;
  std::set<std::string> reserved_;
  spec::VegaSpec spec_;
};

}  // namespace rewrite
}  // namespace vegaplus

#endif  // VEGAPLUS_REWRITE_PLAN_BUILDER_H_
