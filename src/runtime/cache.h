// Query-result cache (§5.5): an array of (SQL string -> result) entries with
// FIFO replacement, duplicate suppression, and a result-size threshold so
// oversized results are never cached.
#ifndef VEGAPLUS_RUNTIME_CACHE_H_
#define VEGAPLUS_RUNTIME_CACHE_H_

#include <deque>
#include <string>
#include <unordered_map>

#include "data/table.h"

namespace vegaplus {
namespace runtime {

/// \brief FIFO query-result cache.
class QueryCache {
 public:
  /// `capacity`: max entries; `max_result_rows`: results larger than this
  /// are not stored (the paper's size threshold).
  QueryCache(size_t capacity, size_t max_result_rows)
      : capacity_(capacity), max_result_rows_(max_result_rows) {}

  /// Lookup; counts a hit/miss.
  bool Get(const std::string& sql, data::TablePtr* out);

  /// Insert unless present, too large, or capacity 0. FIFO-evicts as needed.
  void Put(const std::string& sql, data::TablePtr table);

  void Clear();

  size_t size() const { return map_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  size_t capacity_;
  size_t max_result_rows_;
  std::unordered_map<std::string, data::TablePtr> map_;
  std::deque<std::string> fifo_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_CACHE_H_
