// Query-result cache (§5.5): (cache key -> result) entries with duplicate
// suppression and a result-size threshold so oversized results are never
// cached. Replacement is LRU by default — Get() promotes the entry, so hot
// queries in a skewed multi-tenant workload survive cold scans — with the
// paper's original FIFO policy kept selectable for ablation benchmarks.
#ifndef VEGAPLUS_RUNTIME_CACHE_H_
#define VEGAPLUS_RUNTIME_CACHE_H_

#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "data/table.h"

namespace vegaplus {
namespace runtime {

/// \brief Bounded query-result cache with LRU (default) or FIFO replacement.
class QueryCache {
 public:
  enum class Policy {
    kLru,   // Get promotes; eviction takes the least recently *used*
    kFifo,  // insertion order only; Get does not affect eviction
  };

  /// `capacity`: max entries; `max_result_rows`: results larger than this
  /// are not stored (the paper's size threshold).
  QueryCache(size_t capacity, size_t max_result_rows, Policy policy = Policy::kLru)
      : capacity_(capacity), max_result_rows_(max_result_rows), policy_(policy) {}

  /// Lookup; counts a hit/miss. Under LRU a hit promotes the entry to
  /// most-recently-used.
  bool Get(const std::string& sql, data::TablePtr* out);

  /// Insert unless present, too large, or capacity 0 (a duplicate Put keeps
  /// the stored table but counts as a use under LRU). Evicts per policy as
  /// needed.
  void Put(const std::string& sql, data::TablePtr table);

  void Clear();

  size_t size() const { return map_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  Policy policy() const { return policy_; }

 private:
  /// Most-recent (front) to eviction candidate (back).
  using Order = std::list<std::pair<std::string, data::TablePtr>>;

  size_t capacity_;
  size_t max_result_rows_;
  Policy policy_;
  Order order_;
  std::unordered_map<std::string, Order::iterator> map_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_CACHE_H_
