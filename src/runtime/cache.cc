#include "runtime/cache.h"

namespace vegaplus {
namespace runtime {

bool QueryCache::Get(const std::string& sql, data::TablePtr* out) {
  auto it = map_.find(sql);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  if (policy_ == Policy::kLru && it->second != order_.begin()) {
    order_.splice(order_.begin(), order_, it->second);
  }
  *out = it->second->second;
  return true;
}

void QueryCache::Put(const std::string& sql, data::TablePtr table) {
  if (capacity_ == 0 || !table) return;
  if (table->num_rows() > max_result_rows_) return;  // size threshold
  auto it = map_.find(sql);
  if (it != map_.end()) {
    // Keep the stored table (duplicate suppression), but a re-Put is a use.
    if (policy_ == Policy::kLru && it->second != order_.begin()) {
      order_.splice(order_.begin(), order_, it->second);
    }
    return;
  }
  while (map_.size() >= capacity_ && !order_.empty()) {
    map_.erase(order_.back().first);
    order_.pop_back();
  }
  order_.emplace_front(sql, std::move(table));
  map_.emplace(sql, order_.begin());
}

void QueryCache::Clear() {
  map_.clear();
  order_.clear();
}

}  // namespace runtime
}  // namespace vegaplus
