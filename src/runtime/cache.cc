#include "runtime/cache.h"

namespace vegaplus {
namespace runtime {

bool QueryCache::Get(const std::string& sql, data::TablePtr* out) {
  auto it = map_.find(sql);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void QueryCache::Put(const std::string& sql, data::TablePtr table) {
  if (capacity_ == 0 || !table) return;
  if (table->num_rows() > max_result_rows_) return;  // size threshold
  if (map_.count(sql) > 0) return;                   // avoid duplicate entries
  while (map_.size() >= capacity_ && !fifo_.empty()) {
    map_.erase(fifo_.front());
    fifo_.pop_front();
  }
  map_.emplace(sql, std::move(table));
  fifo_.push_back(sql);
}

void QueryCache::Clear() {
  map_.clear();
  fifo_.clear();
}

}  // namespace runtime
}  // namespace vegaplus
