#include "runtime/engine_config.h"

#include "common/parallel.h"
#include "data/column.h"
#include "expr/batch_eval.h"
#include "tiles/tile_store.h"

namespace vegaplus {
namespace runtime {

EngineConfig EngineConfig::Current() {
  EngineConfig cfg;
  cfg.vectorized = expr::VectorizedEnabled();
  cfg.dictionary_encoding = data::DictionaryEncodingEnabled();
  cfg.morsel_parallel = parallel::MorselParallelEnabled();
  cfg.morsel_threads = parallel::MorselParallelism();
  cfg.morsel_rows = parallel::MorselRows();
  cfg.tile_serving = tiles::TileServingEnabled();
  return cfg;
}

void EngineConfig::Apply() const {
  expr::SetVectorizedEnabled(vectorized);
  data::SetDictionaryEncodingEnabled(dictionary_encoding);
  parallel::SetMorselParallelEnabled(morsel_parallel);
  parallel::SetMorselParallelism(morsel_threads);
  parallel::SetMorselRows(morsel_rows);
  tiles::SetTileServingEnabled(tile_serving);
}

}  // namespace runtime
}  // namespace vegaplus
