#include "runtime/engine_config.h"

#include "common/cancel.h"
#include "common/parallel.h"
#include "data/column.h"
#include "expr/batch_eval.h"
#include "expr/kernels/kernels.h"
#include "storage/stats.h"
#include "tiles/tile_store.h"

namespace vegaplus {
namespace runtime {

EngineConfig EngineConfig::Current() {
  EngineConfig cfg;
  cfg.vectorized = expr::VectorizedEnabled();
  cfg.simd_kernels = kernels::SimdEnabled();
  cfg.dictionary_encoding = data::DictionaryEncodingEnabled();
  cfg.morsel_parallel = parallel::MorselParallelEnabled();
  cfg.morsel_threads = parallel::MorselParallelism();
  cfg.morsel_rows = parallel::MorselRows();
  cfg.tile_serving = tiles::TileServingEnabled();
  cfg.zone_map_pruning = storage::ZoneMapPruningEnabled();
  cfg.storage_residency_bytes = storage::DefaultResidencyBudget();
  cfg.cooperative_cancel = common::CooperativeCancelEnabled();
  return cfg;
}

void EngineConfig::Apply() const {
  expr::SetVectorizedEnabled(vectorized);
  kernels::SetSimdEnabled(simd_kernels);
  data::SetDictionaryEncodingEnabled(dictionary_encoding);
  parallel::SetMorselParallelEnabled(morsel_parallel);
  parallel::SetMorselParallelism(morsel_threads);
  parallel::SetMorselRows(morsel_rows);
  tiles::SetTileServingEnabled(tile_serving);
  storage::SetZoneMapPruningEnabled(zone_map_pruning);
  storage::SetDefaultResidencyBudget(storage_residency_bytes);
  common::SetCooperativeCancelEnabled(cooperative_cancel);
}

}  // namespace runtime
}  // namespace vegaplus
