// Middleware: the server-side layer between clients' VDTs and the DBMS
// (Fig. 2). A single Middleware is a thread-safe shared service: it owns the
// prepared-statement registry, the server-side result cache, and a worker
// pool that executes DBMS work; each client obtains a Session carrying its
// own client-side cache and stats. Resolution order per query: client cache
// -> middleware cache -> DBMS (§5.5), charging simulated latency for
// whichever tiers are touched. Result encoding (JSON vs columnar binary
// "Arrow") determines transfer and decode cost (§4 "Efficient Transfers").
//
// Queries are keyed by (prepared statement, bound parameters) — exact,
// cheap, and insensitive to SQL text formatting. Identical in-flight queries
// are collapsed (single-flight), and a Submit with a newer generation for
// the same statement within a session cancels the superseded in-flight
// request instead of decoding it.
//
// The middleware also hosts a cross-session tile store: bin+aggregate
// shapes are answered from precomputed multi-resolution aggregation trees
// when coverage is exact (see tiles/tile_store.h), skipping the DBMS scan
// entirely. Tile hits fill both cache tiers like any other result.
#ifndef VEGAPLUS_RUNTIME_MIDDLEWARE_H_
#define VEGAPLUS_RUNTIME_MIDDLEWARE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rewrite/query_service.h"
#include "runtime/circuit_breaker.h"
#include "runtime/engine_config.h"
#include "runtime/fault_injector.h"
#include "tiles/tile_store.h"
#include "runtime/cache.h"
#include "runtime/latency_model.h"
#include "runtime/worker_pool.h"
#include "sql/engine.h"

namespace vegaplus {
namespace runtime {

/// Retry policy for *transient* DBMS failures (kUnavailable, kIOError):
/// capped exponential backoff with deterministic jitter, so two runs with
/// the same fault schedule retry at the same simulated cadence. Terminal
/// failures (parse/type/logic errors) are never retried, and neither is a
/// request that was superseded mid-flight — its result is dead weight.
struct RetryPolicy {
  /// Total execution attempts, including the first (1 = no retries).
  size_t max_attempts = 3;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 50.0;
  /// Backoff is scaled by a factor in [1 - jitter/2, 1 + jitter/2], drawn
  /// deterministically from (cache key, attempt).
  double jitter = 0.25;
};

/// Hedged requests: when a DBMS execution is still running past a latency
/// threshold, launch one duplicate attempt on another worker and take the
/// first success; the loser is cancelled through its cooperative token. The
/// threshold comes from live per-statement latency observations (p95 of a
/// recent-sample ring), so hedges fire only for requests already slower than
/// the statement's own tail — the classic tail-at-scale recipe.
struct HedgePolicy {
  bool enabled = false;
  /// Hedge when the primary has been running longer than
  /// `latency_factor * observed p95` for the statement.
  double latency_factor = 1.0;
  /// Observations required before the p95 is trusted; below it no hedge
  /// fires (unless fixed_threshold_ms overrides).
  size_t min_samples = 8;
  /// > 0: skip the latency model and hedge at this fixed delay (tests).
  double fixed_threshold_ms = 0;
  /// Floor under the computed threshold, so a run of cache-warm fast
  /// samples cannot make hedging fire instantly on every request.
  double min_threshold_ms = 1.0;
};

struct MiddlewareOptions {
  /// Encode results as columnar binary (true, the Arrow path) or JSON rows.
  bool binary_encoding = true;
  bool enable_client_cache = true;
  bool enable_server_cache = true;
  size_t cache_capacity = 64;
  /// Results with more rows than this are not cached (§5.5 size threshold).
  size_t cache_max_result_rows = 200000;
  /// Replacement policy of the server cache tier (client caches are small
  /// and per-session; they use the same policy). LRU beats FIFO under
  /// skewed multi-tenant workloads; FIFO is kept for ablations.
  QueryCache::Policy cache_policy = QueryCache::Policy::kLru;
  LatencyParams latency;
  /// DBMS worker threads shared by all sessions.
  size_t worker_threads = 4;
  /// Bound on the prepared-statement registry (0 = unbounded). Unreferenced
  /// statements — ad-hoc literal-inlined SQL from legacy Session::Execute
  /// clients — are LRU-evicted past this cap. Statements prepared through
  /// the public Prepare() surface are pinned (their handles stay live
  /// forever), so parameterized dashboards are never evicted; the cap
  /// applies to the churn.
  size_t max_prepared_statements = 256;
  /// Test instrumentation: invoked by a worker right before DBMS execution
  /// (after cache and tile misses), with the query's cache key. Lets
  /// concurrency tests gate execution deterministically. Null in production.
  std::function<void(const std::string& cache_key)> before_dbms_execute;
  /// Engine feature snapshot this middleware runs with. Unset means
  /// "snapshot the ambient process-wide configuration at construction".
  /// The snapshot decides middleware-owned features (tile serving);
  /// process-global toggles (vectorization, morsels, dictionaries) remain
  /// ambient — use ScopedEngineConfig to pin them for a scope.
  std::optional<EngineConfig> engine_config;
  /// Tile store tuning (used only when the snapshot enables tile serving).
  tiles::TileStoreOptions tile_options;
  /// Retry schedule for transient DBMS failures.
  RetryPolicy retry;
  /// Hedged duplicate attempts for tail-latency DBMS executions.
  HedgePolicy hedge;
  /// Per-statement circuit breaker; open breakers fail fast into the
  /// degraded path instead of burning workers on a dead backend.
  CircuitBreakerOptions circuit_breaker;
  /// Deterministic fault injection on the DBMS execution path (chaos tests
  /// and benches). Unset = no injector, zero overhead.
  std::optional<FaultInjectorOptions> fault_injection;
  /// Bound on *queued* (not running) worker tasks. Past it, submissions are
  /// load-shed with kUnavailable instead of queueing unboundedly — under
  /// saturation a fast refusal beats a result that arrives after the client
  /// has already moved on. 0 = unbounded (legacy behavior).
  ///
  /// Shedding is fairness-aware: at the bound, only the session with the
  /// most tasks already queued is refused (the heaviest submitter is the
  /// one causing the saturation); lighter sessions are still admitted, so
  /// one runaway dashboard cannot starve every other client's admission.
  size_t max_queue_depth = 0;
  /// When fresh execution is impossible (open breaker, expired deadline,
  /// retries exhausted), serve a stale-but-marked cached result or a coarser
  /// already-built tile level instead of an error. Responses carry
  /// `degraded = true` so clients can render them provisionally.
  bool enable_degraded_serving = true;
  /// Capacity of the stale-result archive backing degraded serving. The
  /// archive is filled on every successful execution and — unlike the cache
  /// tiers — deliberately survives ClearCaches(): it is a disaster reserve,
  /// not a freshness tier.
  size_t stale_cache_capacity = 256;
};

/// Measure the encoded payload size of a result. Exact for small tables;
/// sampled + extrapolated beyond `sample_rows` to keep harness runtimes
/// bounded (documented substitution; proportions preserved).
size_t EstimateEncodedBytes(const data::Table& table, bool binary,
                            size_t sample_rows = 20000);

class Middleware;

/// Per-session counters. Also the unit of fleet aggregation: Middleware's
/// totals are the sum of every live session's counters plus the counters of
/// every *retired* session, folded in when the session is pruned.
struct SessionStats {
  size_t submitted = 0;
  size_t queries = 0;  // completed: client + server + tiles + dbms below
  size_t client_cache_hits = 0;
  size_t server_cache_hits = 0;
  size_t tile_hits = 0;
  size_t dbms_executions = 0;
  size_t cancelled = 0;
  size_t errors = 0;
  /// Re-executions after a transient DBMS failure (extra attempts only).
  size_t retries = 0;
  /// Requests that failed with kDeadlineExceeded (subset of errors).
  size_t deadline_exceeded = 0;
  /// Requests load-shed at the bounded worker queue (subset of errors).
  size_t shed = 0;
  /// Completions served degraded — stale cache or coarser tile level
  /// (subset of queries).
  size_t degraded_responses = 0;
  /// Duplicate attempts launched past the hedge threshold.
  size_t hedged_requests = 0;
  /// Completions adopted from the hedge attempt (subset of hedged_requests).
  size_t hedge_wins = 0;
  /// Engine executions aborted at a cooperative cancellation checkpoint
  /// (fired token observed mid-flight: supersession, deadline, hedge loss).
  size_t cancelled_mid_flight = 0;
  size_t bytes_transferred = 0;
  double total_latency_ms = 0;
};

/// A session's counters behind their own lock, shared between the Session
/// and the Middleware's session registry. The block outlives the Session:
/// when a client drops its session, the registry still holds the block and
/// folds it into the retired-sessions accumulator, so fleet totals never go
/// backwards on session churn.
struct SessionStatsBlock {
  mutable std::mutex mu;
  SessionStats stats;
};

/// \brief One client's view of the shared Middleware: per-client cache,
/// per-client stats, and the supersession scope for generations.
///
/// Created by Middleware::CreateSession(); must not outlive its Middleware.
/// Thread-safe (a session may be driven from multiple threads, and workers
/// touch its cache).
class Session : public rewrite::QueryService,
                public std::enable_shared_from_this<Session> {
 public:
  /// Legacy blocking path: prepare (formatting-insensitive), submit with no
  /// parameters, await.
  Result<rewrite::QueryResponse> Execute(const std::string& sql) override;

  /// Prepare against the middleware-wide statement registry; formatting
  /// variants of one logical statement share a handle (and cache entries).
  Result<rewrite::PreparedHandle> Prepare(const std::string& sql_template) override;

  /// Asynchronous submission. Client-cache hits resolve immediately; misses
  /// are executed on the middleware's worker pool. A request whose
  /// generation exceeds the session's last in-flight request for the same
  /// handle cancels that older request.
  rewrite::QueryTicketPtr Submit(const rewrite::QueryRequest& request) override;

  using Stats = SessionStats;
  Stats stats() const;

  uint64_t id() const { return id_; }

  /// Tasks this session has queued on the worker pool that have not yet
  /// started running. The admission-fairness signal: at a saturated queue,
  /// the session with the largest value is shed first.
  size_t queued() const { return queued_.load(std::memory_order_relaxed); }

  void ClearCache();

 private:
  friend class Middleware;
  Session(Middleware* owner, uint64_t id, size_t cache_capacity,
          size_t cache_max_result_rows, QueryCache::Policy cache_policy,
          std::shared_ptr<SessionStatsBlock> stats_block);

  bool CacheGet(const std::string& key, data::TablePtr* out);
  void CachePut(const std::string& key, data::TablePtr table);

  Middleware* owner_;
  uint64_t id_;
  /// Queued-but-not-running worker tasks attributed to this session.
  std::atomic<size_t> queued_{0};
  mutable std::mutex mu_;
  QueryCache cache_;
  /// Shared with the Middleware's session registry; see SessionStatsBlock.
  std::shared_ptr<SessionStatsBlock> stats_block_;
  /// Latest live async ticket per supersession scope (client_id, handle).
  /// weak_ptr: completed tickets (and their result tables) are not pinned —
  /// an entry only matters while its request is in flight, when the worker
  /// task's closure keeps the ticket alive.
  std::map<std::pair<uint64_t, rewrite::PreparedHandle>,
           std::weak_ptr<rewrite::QueryTicket>>
      last_ticket_;
};

/// \brief The shared query service: statement registry + server cache +
/// worker pool + session factory. Also implements QueryService directly
/// through an implicit default session, so single-client callers and
/// pre-session code keep working unchanged.
class Middleware : public rewrite::QueryService {
 public:
  Middleware(const sql::Engine* engine, MiddlewareOptions options);
  ~Middleware() override;

  Middleware(const Middleware&) = delete;
  Middleware& operator=(const Middleware&) = delete;

  /// Stop the worker pool: drains queued work, joins the workers. The
  /// destructor calls this; tests call it directly to exercise the
  /// submit/shutdown race. After (or racing with) Shutdown, a Submit whose
  /// task the pool rejects resolves its ticket as Status::Cancelled instead
  /// of leaving Await blocked on a task no worker will ever run.
  void Shutdown();

  /// New client session (own cache, stats, and supersession scope).
  std::shared_ptr<Session> CreateSession();

  /// The implicit session behind the legacy single-client surface.
  Session& default_session() { return *default_session_; }

  // QueryService surface, routed through the default session.
  Result<rewrite::QueryResponse> Execute(const std::string& sql) override;
  Result<rewrite::PreparedHandle> Prepare(const std::string& sql_template) override;
  rewrite::QueryTicketPtr Submit(const rewrite::QueryRequest& request) override;

  /// Drop one pin from a handle obtained from the public Prepare() surface.
  /// Pins are counted: every Prepare() of the same canonical statement
  /// (formatting variants dedupe onto one handle) adds a pin, so one
  /// client's Release never invalidates another client's live handle. When
  /// the last pin drops, the statement stays resolvable for now but rejoins
  /// the LRU order and may be evicted once the registry exceeds its cap —
  /// after which the handle fails loudly (handles are never reused, so it
  /// can never silently rebind to a different statement). Long-lived
  /// clients call this when a dashboard retires a template so the bounded
  /// registry can reclaim the slot. Unknown or already-unpinned handles are
  /// a no-op.
  void Release(rewrite::PreparedHandle handle);

  /// Aggregate stats across every session of this middleware — live ones
  /// plus the retired-sessions accumulator, so counters are monotone across
  /// session churn (a dropped session's history is folded in, not lost).
  struct Stats {
    size_t queries = 0;
    size_t submitted = 0;
    size_t client_cache_hits = 0;
    size_t server_cache_hits = 0;
    size_t tile_hits = 0;
    size_t dbms_executions = 0;
    size_t cancelled = 0;
    size_t errors = 0;
    size_t retries = 0;            ///< extra attempts after transient failures
    size_t deadline_exceeded = 0;  ///< kDeadlineExceeded deliveries (⊂ errors)
    size_t shed = 0;               ///< load-shed at the worker queue (⊂ errors)
    size_t degraded_responses = 0; ///< stale/coarser completions (⊂ queries)
    size_t hedged_requests = 0;    ///< duplicate attempts launched
    size_t hedge_wins = 0;         ///< completions adopted from the hedge
    size_t cancelled_mid_flight = 0; ///< engine aborts at a cancel checkpoint
    size_t breaker_open = 0;       ///< circuit-breaker open transitions
    size_t prepared_statements = 0;
    size_t sessions = 0;
    size_t bytes_transferred = 0;
    double total_latency_ms = 0;
    // Out-of-core storage activity since construction / ResetStats().
    size_t storage_chunks_pruned = 0;   ///< shard chunks skipped via zone maps
    size_t storage_morsels_pruned = 0;  ///< in-memory morsels skipped likewise
    size_t storage_chunks_paged_in = 0; ///< shard chunks decoded into residency
    size_t storage_resident_bytes = 0;  ///< current decoded-chunk gauge (raw)
    // SIMD kernel dispatch since construction / ResetStats().
    size_t kernel_bitmap_selections = 0; ///< filters resolved in bitmap domain
    size_t kernel_index_selections = 0;  ///< filters refined on index lists
    size_t kernel_scalar_fallbacks = 0;  ///< kernel calls on the scalar bodies
  };
  Stats stats() const;
  void ResetStats();

  /// Drop the server cache tier and every live session's client cache
  /// (e.g. between benchmark conditions).
  void ClearCaches();

  /// Statements currently resident in the registry (pinned + evictable).
  /// Bounded by max_prepared_statements plus the pinned set, regardless of
  /// how many distinct ad-hoc strings have passed through Execute.
  size_t registry_size() const;

  const MiddlewareOptions& options() const { return options_; }

  /// The engine feature snapshot taken at construction.
  const EngineConfig& engine_config() const { return engine_config_; }

  /// The shared tile tier, or nullptr when the snapshot disabled it.
  tiles::TileStore* tile_store() const { return tile_store_.get(); }

  /// The fault injector, or nullptr when options.fault_injection is unset.
  /// Tests mutate its rules mid-scenario (e.g. flip a table into outage).
  FaultInjector* fault_injector() const { return fault_injector_.get(); }

  /// The per-statement circuit breaker (always present; may be disabled).
  CircuitBreaker* circuit_breaker() const { return breaker_.get(); }

  /// Saturation signals: queue_depth() / rejected_count() / num_threads().
  const WorkerPool& worker_pool() const { return *pool_; }

 private:
  friend class Session;

  /// Register (or find) the canonical statement for `sql_template`.
  /// `pin` marks the handle as externally held (public Prepare): pinned
  /// entries are never evicted, so live handles keep working. Unpinned
  /// callers get a transient reference they must drop via
  /// ReleaseTransient() once their submission has resolved.
  Result<rewrite::PreparedHandle> PrepareShared(const std::string& sql_template,
                                                bool pin);
  void ReleaseTransient(rewrite::PreparedHandle handle);
  /// LRU-evict unreferenced statements down to the cap. Requires mu_.
  void EvictStatementsLocked();
  sql::PreparedPtr StatementFor(rewrite::PreparedHandle handle) const;

  /// (statement, bound params) -> canonical cache key.
  static std::string CacheKeyFor(const sql::PreparedStatement& stmt,
                                 const std::vector<rewrite::QueryParam>& params);

  /// Worker-side execution of one submitted request. `deadline` is the
  /// absolute wall-clock cutoff derived from QueryRequest::deadline_ms at
  /// submit time (nullopt = none).
  void RunQueryTask(std::shared_ptr<Session> session, rewrite::QueryTicketPtr ticket,
                    sql::PreparedPtr stmt, std::vector<rewrite::QueryParam> params,
                    std::string key,
                    std::optional<std::chrono::steady_clock::time_point> deadline);

  // Single-flight: serialize workers executing the same cache key. Returns
  // false — without claiming the slot — when `deadline` expires while
  // waiting on the current leader.
  bool EnterInFlight(const std::string& key,
                     std::optional<std::chrono::steady_clock::time_point> deadline);
  void LeaveInFlight(const std::string& key);

  /// True when the bounded queue is saturated but `session` is not (one of)
  /// the heaviest submitters — such sessions bypass the bound instead of
  /// being shed, so admission refusals land on the session causing the load.
  bool ShouldBypassQueueBound(const Session* session) const;

  void RecordCompletion(Session* session, const rewrite::QueryResponse& response);
  void RecordCancelled(Session* session);
  void RecordError(Session* session, const Status& status);
  void RecordRetry(Session* session);
  void RecordShed(Session* session);
  void RecordCancelledMidFlight(Session* session);
  void RecordHedgeLaunched(Session* session);
  void RecordHedgeWin(Session* session);

  /// Hedge delay for `scope` (canonical SQL): fixed_threshold_ms when set,
  /// else latency_factor * the statement's observed p95 once min_samples
  /// have landed. Negative = do not hedge (disabled or not enough data).
  double HedgeThresholdMs(const std::string& scope) const;
  /// Feed one successful DBMS completion latency into the statement's ring.
  void RecordDbmsLatency(const std::string& scope, double ms);

  /// Fold the stats of expired sessions into retired_stats_ and drop their
  /// slots. Requires mu_.
  void PruneSessionsLocked() const;

  const sql::Engine* engine_;
  MiddlewareOptions options_;
  EngineConfig engine_config_;
  /// Cross-session tile tier (created iff engine_config_.tile_serving).
  /// Internally synchronized; safe to probe from any worker.
  std::unique_ptr<tiles::TileStore> tile_store_;

  /// One registered canonical statement. Handles are monotonically
  /// increasing and never reused, so eviction can never make an old handle
  /// silently resolve to a different statement — a dead handle fails loudly.
  struct StatementEntry {
    sql::PreparedPtr stmt;
    /// Outstanding public Prepare() pins (deduped Prepares stack); entries
    /// with pins are never evicted. Release() drops one pin.
    size_t pin_count = 0;
    size_t transient_uses = 0;  // in-flight legacy Execute calls
    /// Position in statement_lru_ (unpinned entries only; pinned entries
    /// leave the order list, they can never be victims).
    std::list<rewrite::PreparedHandle>::iterator lru_it;
  };

  /// Recent DBMS completion latencies of one statement (fixed ring; the
  /// hedge threshold reads its p95). Small enough to copy under mu_.
  struct LatencyRing {
    static constexpr size_t kCapacity = 64;
    double samples[kCapacity];
    size_t next = 0;
    size_t count = 0;
  };

  mutable std::mutex mu_;  // statements, server cache, stats, session list
  std::unordered_map<rewrite::PreparedHandle, StatementEntry> statements_;
  std::unordered_map<std::string, rewrite::PreparedHandle> by_canonical_;
  /// Unpinned statements, most recently used first; eviction walks from the
  /// back (skipping in-flight transient uses), so finding a victim is O(1)
  /// amortized instead of scanning the registry.
  std::list<rewrite::PreparedHandle> statement_lru_;
  rewrite::PreparedHandle next_handle_ = 1;
  QueryCache server_cache_;
  /// Stale-result archive for degraded serving: filled on every successful
  /// execution, read only when fresh execution is impossible. Survives
  /// ClearCaches() by design.
  QueryCache stale_cache_;

  /// Session registry. Each slot pairs the weak session pointer with the
  /// session's stats block, which the slot keeps alive past the session so
  /// pruning can fold its counters instead of losing them.
  struct SessionSlot {
    std::weak_ptr<Session> session;
    std::shared_ptr<SessionStatsBlock> stats;
  };
  mutable std::vector<SessionSlot> sessions_;
  /// Counters folded in from pruned (retired) sessions. Guarded by mu_;
  /// mutable because stats() prunes lazily.
  mutable SessionStats retired_stats_;
  size_t sessions_created_ = 0;
  size_t prepared_statements_created_ = 0;
  /// ResetStats() rebases breaker_open on this monotone counter.
  size_t breaker_open_baseline_ = 0;
  /// Likewise for the process-wide storage counters (monotone; the gauge
  /// storage_resident_bytes is reported raw, not rebased).
  size_t storage_chunks_pruned_baseline_ = 0;
  size_t storage_morsels_pruned_baseline_ = 0;
  size_t storage_chunks_paged_in_baseline_ = 0;
  /// Likewise for the process-wide SIMD kernel dispatch counters.
  size_t kernel_bitmap_selections_baseline_ = 0;
  size_t kernel_index_selections_baseline_ = 0;
  size_t kernel_scalar_fallbacks_baseline_ = 0;
  uint64_t next_session_id_ = 1;

  /// Per-statement latency observations driving the hedge threshold.
  /// Guarded by mu_; keyed by canonical SQL.
  std::unordered_map<std::string, LatencyRing> latency_rings_;

  std::unique_ptr<CircuitBreaker> breaker_;
  std::unique_ptr<FaultInjector> fault_injector_;  // null unless configured

  std::mutex flight_mu_;
  std::condition_variable flight_cv_;
  std::set<std::string> in_flight_;

  std::shared_ptr<Session> default_session_;

  /// Declared last: destroyed first, draining queued work while the
  /// registry, caches, and sessions above are still alive.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_MIDDLEWARE_H_
