// Middleware: the server-side layer between the client's VDTs and the DBMS
// (Fig. 2). Resolution order per query: client cache -> middleware cache ->
// DBMS (§5.5), charging simulated latency for whichever tiers are touched.
// Result encoding (JSON vs columnar binary "Arrow") determines transfer and
// decode cost (§4 "Efficient Transfers").
#ifndef VEGAPLUS_RUNTIME_MIDDLEWARE_H_
#define VEGAPLUS_RUNTIME_MIDDLEWARE_H_

#include <string>

#include "rewrite/query_service.h"
#include "runtime/cache.h"
#include "runtime/latency_model.h"
#include "sql/engine.h"

namespace vegaplus {
namespace runtime {

struct MiddlewareOptions {
  /// Encode results as columnar binary (true, the Arrow path) or JSON rows.
  bool binary_encoding = true;
  bool enable_client_cache = true;
  bool enable_server_cache = true;
  size_t cache_capacity = 64;
  /// Results with more rows than this are not cached (§5.5 size threshold).
  size_t cache_max_result_rows = 200000;
  LatencyParams latency;
};

/// Measure the encoded payload size of a result. Exact for small tables;
/// sampled + extrapolated beyond `sample_rows` to keep harness runtimes
/// bounded (documented substitution; proportions preserved).
size_t EstimateEncodedBytes(const data::Table& table, bool binary,
                            size_t sample_rows = 20000);

/// \brief QueryService implementation: cache tiers + network + SQL engine.
class Middleware : public rewrite::QueryService {
 public:
  Middleware(const sql::Engine* engine, MiddlewareOptions options)
      : engine_(engine), options_(options),
        client_cache_(options.enable_client_cache ? options.cache_capacity : 0,
                      options.cache_max_result_rows),
        server_cache_(options.enable_server_cache ? options.cache_capacity : 0,
                      options.cache_max_result_rows) {}

  Result<rewrite::QueryResponse> Execute(const std::string& sql) override;

  struct Stats {
    size_t queries = 0;
    size_t client_cache_hits = 0;
    size_t server_cache_hits = 0;
    size_t dbms_executions = 0;
    size_t bytes_transferred = 0;
    double total_latency_ms = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Drop both cache tiers (e.g. between benchmark conditions).
  void ClearCaches() {
    client_cache_.Clear();
    server_cache_.Clear();
  }

  const MiddlewareOptions& options() const { return options_; }

 private:
  const sql::Engine* engine_;
  MiddlewareOptions options_;
  QueryCache client_cache_;
  QueryCache server_cache_;
  Stats stats_;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_MIDDLEWARE_H_
