// Deterministic fault injection for the middleware's DBMS execution path.
//
// The injector sits exactly where MiddlewareOptions::before_dbms_execute
// fires — after every cache and tile tier has missed, immediately before the
// engine would run — and decides the fate of each execution *attempt*:
// succeed, fail with a configured status, and/or stall for a fixed simulated
// DBMS latency. Decisions are a pure function of (seed, query key, per-key
// attempt number), so a chaos test or bench replays bit-identically run to
// run regardless of thread interleaving: the Nth attempt of a given query
// always gets the same verdict.
//
// Rules match on a substring of the query's cache key (canonical SQL +
// rendered bound parameters), so one rule can target a single statement, a
// whole table (its name appears in the canonical SQL), or everything (empty
// match). The first matching rule wins. Supported schedules:
//   * fail_times = N      fail the first N attempts of each distinct query,
//                         then succeed (transient fault; exercises retry)
//   * permanent = true    every attempt fails (dead statement / table;
//                         exercises the circuit breaker and degraded serving)
//   * fail_probability    per-attempt Bernoulli failure, hashed from
//                         (seed, key, attempt) — random-looking but replayable
//   * stall_ms            wall-clock stall added before the verdict (slow
//                         backend; exercises deadlines and tail latency)
#ifndef VEGAPLUS_RUNTIME_FAULT_INJECTOR_H_
#define VEGAPLUS_RUNTIME_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace vegaplus {
namespace runtime {

struct FaultRule {
  /// Substring of the query cache key this rule applies to ("" = all
  /// queries). Keys look like "<canonical sql>\x1f<param>=<literal>...".
  std::string match;
  /// Fail the first `fail_times` attempts of each distinct query key, then
  /// succeed. Attempts are counted per key across retries and resubmissions,
  /// starting from the first attempt a rule matched the key.
  size_t fail_times = 0;
  /// Permanent outage: every attempt fails regardless of the counters.
  bool permanent = false;
  /// After `fail_times` is exhausted, fail each attempt with this
  /// probability, decided deterministically from (seed, key, attempt).
  double fail_probability = 0;
  /// Wall-clock stall applied to every matching attempt (before the verdict),
  /// simulating a slow backend. The middleware caps the actual sleep at the
  /// request's remaining deadline but charges the full stall as simulated
  /// server latency.
  double stall_ms = 0;
  /// Status code injected failures carry. kUnavailable (default) is
  /// transient — the middleware retries it; most other codes are terminal.
  StatusCode code = StatusCode::kUnavailable;
};

struct FaultInjectorOptions {
  /// Seed for the probabilistic schedule; same seed => same verdicts.
  uint64_t seed = 42;
  std::vector<FaultRule> rules;
};

/// Verdict for one execution attempt.
struct FaultDecision {
  bool fail = false;
  Status status;        ///< set iff fail
  double stall_ms = 0;  ///< backend stall to simulate before the outcome
};

/// \brief Thread-safe deterministic fault schedule, keyed per query.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options);

  /// Decide the fate of the next execution attempt of `key`. Increments the
  /// per-key attempt counter — but only when some rule matches `key`, so the
  /// counter map stays bounded by the faulted working set, not by every
  /// distinct query a long bench ever runs.
  FaultDecision OnDbmsExecute(const std::string& key);

  /// Storage-layer chaos: decide the fate of one chunk page-in, keyed
  /// "storage:<shard path>#<chunk index>" so rules can target one shard
  /// (match its path), one chunk, or the whole out-of-core tier (match
  /// "storage:"). Same deterministic (seed, key, attempt) schedule as
  /// OnDbmsExecute; bridge the verdict into storage::SetPageInFaultHook.
  FaultDecision OnStoragePageIn(const std::string& path, size_t chunk_index);

  /// Rules are mutable at runtime so tests can flip a healthy backend into
  /// an outage (and back) mid-scenario. Attempt counters are preserved.
  void AddRule(FaultRule rule);
  void ClearRules();

  /// Attempts that were failed by the schedule so far.
  size_t injected_failures() const;
  /// Total attempts inspected (failed or not), matched by a rule or not.
  size_t attempts() const;
  /// Distinct keys with an attempt counter (rule-matched keys only).
  size_t tracked_keys() const;

 private:
  mutable std::mutex mu_;
  FaultInjectorOptions options_;
  std::unordered_map<std::string, size_t> attempts_by_key_;
  size_t injected_failures_ = 0;
  size_t total_attempts_ = 0;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_FAULT_INJECTOR_H_
