#include "runtime/worker_pool.h"

#include <algorithm>

namespace vegaplus {
namespace runtime {

WorkerPool::WorkerPool(size_t threads, size_t max_queue_depth)
    : max_queue_depth_(max_queue_depth) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Shutdown() {
  // Serialized: a concurrent (or repeated) Shutdown blocks until the first
  // one has fully joined, so the destructor can never free the pool while
  // another caller is still mid-join.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (joined_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  joined_ = true;
}

bool WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Once stopping_ is set the workers may already have drained the queue
    // and returned; a task enqueued now would never run and its ticket's
    // Await would block forever. Reject so the caller can resolve it.
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

WorkerPool::Admission WorkerPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Admission::kShutdown;
    if (max_queue_depth_ > 0 && queue_.size() >= max_queue_depth_) {
      ++rejected_;
      return Admission::kShed;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return Admission::kAccepted;
}

size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t WorkerPool::rejected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace runtime
}  // namespace vegaplus
