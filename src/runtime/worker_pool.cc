#include "runtime/worker_pool.h"

#include <algorithm>

namespace vegaplus {
namespace runtime {

WorkerPool::WorkerPool(size_t threads) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace runtime
}  // namespace vegaplus
