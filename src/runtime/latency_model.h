// The deterministic latency model (DESIGN.md §1). Real rows flow through
// real operators and real SQL; this model converts the measured *work*
// (row touches, operators, encoded bytes, round trips) into simulated
// milliseconds. Unit costs are calibrated to rough real-world throughputs:
//   * native engine ~40M row-touches/s        (25 ns/row)
//   * browser JS runtime ~8x slower           (200 ns/row)
//   * LAN round trip 5 ms, ~100 MB/s effective bandwidth
//   * JSON decode ~50 MB/s; binary decode ~1 GB/s; CSV parse ~20 MB/s
// Determinism is what makes training labels and benchmark output
// reproducible run-to-run.
#ifndef VEGAPLUS_RUNTIME_LATENCY_MODEL_H_
#define VEGAPLUS_RUNTIME_LATENCY_MODEL_H_

#include <cstddef>

namespace vegaplus {
namespace runtime {

struct LatencyParams {
  // Compute.
  double server_ns_per_row = 25.0;
  double client_ns_per_row = 200.0;  // the paper's JS-vs-native asymmetry
  double per_query_overhead_ms = 1.0;
  double per_op_overhead_ms = 0.05;
  // Network.
  double round_trip_ms = 5.0;
  double bandwidth_bytes_per_ms = 100000.0;  // ~100 MB/s
  // Client-side decode of fetched results.
  double json_decode_ns_per_byte = 20.0;
  double binary_decode_ns_per_byte = 1.0;
  // Pure-Vega baseline: loading + parsing the source CSV at init.
  double csv_parse_ns_per_byte = 50.0;
};

/// Server execution time for `rows_processed` operator-row touches across
/// `num_operators` plan nodes.
inline double ServerComputeMillis(size_t rows_processed, int num_operators,
                                  const LatencyParams& p) {
  return p.per_query_overhead_ms + num_operators * p.per_op_overhead_ms +
         rows_processed * p.server_ns_per_row * 1e-6;
}

/// Client dataflow time for `rows_processed` row touches across `ops`
/// evaluated operators.
inline double ClientComputeMillis(size_t rows_processed, int ops,
                                  const LatencyParams& p) {
  return ops * p.per_op_overhead_ms + rows_processed * p.client_ns_per_row * 1e-6;
}

/// One round trip moving `bytes` of encoded payload plus client decode.
inline double TransferMillis(size_t bytes, bool binary, const LatencyParams& p) {
  double decode = binary ? p.binary_decode_ns_per_byte : p.json_decode_ns_per_byte;
  return p.round_trip_ms + bytes / p.bandwidth_bytes_per_ms + bytes * decode * 1e-6;
}

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_LATENCY_MODEL_H_
