// One struct for every process-wide execution switch. Historically each layer
// grew its own free-function toggle (expr::SetVectorizedEnabled,
// data::SetDictionaryEncodingEnabled, parallel::SetMorselParallelEnabled and
// the morsel knobs, tiles::SetTileServingEnabled); callers that wanted a
// coherent configuration had to call five setters in the right order and had
// no way to read the state back atomically. EngineConfig is the consolidated
// front door:
//
//   * EngineConfig::Current() snapshots every switch.
//   * cfg.Apply() writes every switch (the per-layer setters stay as the
//     storage owners, so layering is unchanged: data/expr/common never see
//     runtime).
//   * Middleware snapshots one EngineConfig at construction
//     (MiddlewareOptions::engine_config overrides the ambient values) and
//     exposes it via Middleware::engine_config(); middleware-side features
//     such as tile serving are gated on the snapshot, not the live globals.
//
// The old per-layer free functions remain valid but are deprecated as a
// public configuration surface — new call sites should go through
// EngineConfig.
#ifndef VEGAPLUS_RUNTIME_ENGINE_CONFIG_H_
#define VEGAPLUS_RUNTIME_ENGINE_CONFIG_H_

#include <cstddef>

namespace vegaplus {
namespace runtime {

struct EngineConfig {
  /// Column-at-a-time compiled expression evaluation (expr::Compiler).
  bool vectorized = true;
  /// Dictionary encoding for string columns loaded from CSV/JSON.
  bool dictionary_encoding = true;
  /// Explicit-SIMD inner-loop kernels (expr/kernels). Disabling forces the
  /// scalar fallback bodies; results must stay bit-identical either way.
  bool simd_kernels = true;
  /// Morsel-driven parallelism across the shared worker pool.
  bool morsel_parallel = true;
  /// Worker count for morsel execution. 0 = hardware concurrency.
  size_t morsel_threads = 0;
  /// Rows per morsel for table-shaped work.
  size_t morsel_rows = 16384;
  /// Middleware-side multi-resolution tile serving for bin+aggregate shapes.
  bool tile_serving = true;
  /// Zone-map pruning of chunks/morsels in the storage layer and the fused
  /// filter path. Disabling it is the differential baseline: every scan
  /// decodes and evaluates everything, results must stay bit-identical.
  bool zone_map_pruning = true;
  /// Byte budget for decoded chunks resident per storage::Reader (LRU
  /// evicted beyond it). 0 = unbounded.
  size_t storage_residency_bytes = 256 << 20;
  /// Cooperative cancellation: morsel/page-in/tile-build checkpoints honor
  /// fired CancelTokens (common/cancel.h), reclaiming workers mid-query when
  /// a deadline expires or a ticket is cancelled. Disabling restores
  /// run-to-completion behavior; results are bit-identical either way
  /// whenever no token fires.
  bool cooperative_cancel = true;

  /// Snapshot the live process-wide switches.
  static EngineConfig Current();

  /// Write every switch back to the owning layer.
  void Apply() const;
};

/// RAII guard: applies `cfg` on construction, restores the previous
/// process-wide state on destruction. Test-oriented.
class ScopedEngineConfig {
 public:
  explicit ScopedEngineConfig(const EngineConfig& cfg)
      : saved_(EngineConfig::Current()) {
    cfg.Apply();
  }
  ~ScopedEngineConfig() { saved_.Apply(); }
  ScopedEngineConfig(const ScopedEngineConfig&) = delete;
  ScopedEngineConfig& operator=(const ScopedEngineConfig&) = delete;

 private:
  EngineConfig saved_;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_ENGINE_CONFIG_H_
