#include "runtime/middleware.h"

#include <algorithm>
#include <utility>

#include "data/ipc.h"
#include "expr/sql_translator.h"

namespace vegaplus {
namespace runtime {

using rewrite::PreparedHandle;
using rewrite::QueryParam;
using rewrite::QueryRequest;
using rewrite::QueryResponse;
using rewrite::QueryTicket;
using rewrite::QueryTicketPtr;

size_t EstimateEncodedBytes(const data::Table& table, bool binary, size_t sample_rows) {
  const size_t n = table.num_rows();
  if (n == 0) {
    return binary ? data::SerializeBinary(table).size()
                  : data::SerializeJsonRows(table).size();
  }
  if (n <= sample_rows) {
    return binary ? data::SerializeBinary(table).size()
                  : data::SerializeJsonRows(table).size();
  }
  data::TablePtr head = table.Head(sample_rows);
  size_t sampled = binary ? data::SerializeBinary(*head).size()
                          : data::SerializeJsonRows(*head).size();
  return static_cast<size_t>(static_cast<double>(sampled) * static_cast<double>(n) /
                             static_cast<double>(sample_rows));
}

// ---- Session ----

Session::Session(Middleware* owner, uint64_t id, size_t cache_capacity,
                 size_t cache_max_result_rows, QueryCache::Policy cache_policy)
    : owner_(owner), id_(id),
      cache_(cache_capacity, cache_max_result_rows, cache_policy) {}

Result<QueryResponse> Session::Execute(const std::string& sql) {
  // Transient registration: ad-hoc literal-inlined SQL must not pin a
  // registry entry forever (legacy clients issue unbounded distinct
  // strings). The transient reference keeps the statement resolvable until
  // this call's submission finishes, then the entry becomes evictable.
  auto handle = owner_->PrepareShared(sql, /*pin=*/false);
  if (!handle.ok()) {
    return Status(handle.status().code(),
                  "middleware: " + handle.status().message() + " [" + sql + "]");
  }
  QueryRequest request;
  request.handle = *handle;
  Result<QueryResponse> response = Submit(request)->Await();
  owner_->ReleaseTransient(*handle);
  return response;
}

Result<PreparedHandle> Session::Prepare(const std::string& sql_template) {
  return owner_->PrepareShared(sql_template, /*pin=*/true);
}

QueryTicketPtr Session::Submit(const QueryRequest& request) {
  sql::PreparedPtr stmt = owner_->StatementFor(request.handle);
  if (!stmt) {
    return QueryTicket::Ready(
        Status::InvalidArgument("middleware: unknown prepared handle"),
        request.generation);
  }
  std::string key = Middleware::CacheKeyFor(*stmt, request.params);
  auto ticket = std::make_shared<QueryTicket>(request.generation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }
  owner_->RecordSubmitted();

  // Supersession: a newer generation within the same scope makes the older
  // in-flight request dead weight — cancel instead of decoding it. Sync
  // Execute() calls (generation 0) neither supersede nor get superseded.
  // Claiming the scope's slot is atomic with the generation comparison: if a
  // concurrent submit with a newer generation won the race, this request is
  // the superseded one and never runs.
  if (request.generation > 0) {
    const std::pair<uint64_t, PreparedHandle> scope{request.client_id, request.handle};
    bool superseded_on_arrival = false;
    rewrite::QueryTicketPtr displaced;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Occasional sweep so dead scopes (e.g. VDTs of discarded dataflows)
      // do not accumulate for the session's lifetime.
      if (last_ticket_.size() > 64) {
        for (auto it = last_ticket_.begin(); it != last_ticket_.end();) {
          it = it->second.expired() ? last_ticket_.erase(it) : std::next(it);
        }
      }
      auto& slot = last_ticket_[scope];
      rewrite::QueryTicketPtr prev = slot.lock();
      if (prev && !prev->done() && prev->generation() > request.generation) {
        superseded_on_arrival = true;
      } else {
        if (prev && prev->generation() < request.generation) displaced = std::move(prev);
        slot = ticket;
      }
    }
    // A displaced ticket that had not completed now resolves to Cancelled;
    // its queued task accounts for the cancellation when the worker reaches
    // it.
    if (displaced) displaced->Cancel();
    if (superseded_on_arrival) {
      ticket->Cancel();
      owner_->RecordCancelled(this);
      return ticket;
    }
  }

  // Tier 1: client cache — a local dictionary lookup, no network at all.
  data::TablePtr cached;
  if (CacheGet(key, &cached)) {
    QueryResponse response;
    response.table = std::move(cached);
    response.latency_millis = 0.05;
    response.bytes = 0;
    response.source = QueryResponse::Source::kClientCache;
    if (ticket->CommitDelivery()) {
      owner_->RecordCompletion(this, response);
    } else {
      owner_->RecordCancelled(this);
    }
    ticket->Deliver(std::move(response));
    return ticket;
  }

  const bool accepted = owner_->pool_->Submit(
      [owner = owner_, self = shared_from_this(), ticket, stmt,
       params = request.params, key = std::move(key)]() mutable {
        owner->RunQueryTask(std::move(self), std::move(ticket), std::move(stmt),
                            std::move(params), std::move(key));
      });
  if (!accepted) {
    // Pool already shutting down: no worker will ever run the task, so the
    // ticket must resolve here — otherwise Await would hang forever.
    ticket->Cancel();
    owner_->RecordCancelled(this);
  }
  return ticket;
}

Session::Stats Session::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Session::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Clear();
}

bool Session::CacheGet(const std::string& key, data::TablePtr* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.Get(key, out);
}

void Session::CachePut(const std::string& key, data::TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Put(key, std::move(table));
}

// ---- Middleware ----

Middleware::Middleware(const sql::Engine* engine, MiddlewareOptions options)
    : engine_(engine), options_(std::move(options)),
      engine_config_(options_.engine_config.value_or(EngineConfig::Current())),
      server_cache_(options_.enable_server_cache ? options_.cache_capacity : 0,
                    options_.cache_max_result_rows, options_.cache_policy),
      pool_(std::make_unique<WorkerPool>(options_.worker_threads)) {
  if (engine_config_.tile_serving) {
    tile_store_ = std::make_unique<tiles::TileStore>(engine_, options_.tile_options);
  }
  default_session_ = CreateSession();
}

// Member destruction order does the work: pool_ is declared last, so the
// workers drain before the registry, caches, and sessions above them die.
Middleware::~Middleware() = default;

void Middleware::Shutdown() { pool_->Shutdown(); }

std::shared_ptr<Session> Middleware::CreateSession() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t client_capacity = options_.enable_client_cache ? options_.cache_capacity : 0;
  auto session = std::shared_ptr<Session>(
      new Session(this, next_session_id_++, client_capacity,
                  options_.cache_max_result_rows, options_.cache_policy));
  // Prune dead sessions while we are here (benchmarks create many).
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [](const std::weak_ptr<Session>& w) {
                                   return w.expired();
                                 }),
                  sessions_.end());
  sessions_.push_back(session);
  ++stats_.sessions;
  return session;
}

Result<QueryResponse> Middleware::Execute(const std::string& sql) {
  return default_session_->Execute(sql);
}

Result<PreparedHandle> Middleware::Prepare(const std::string& sql_template) {
  return PrepareShared(sql_template, /*pin=*/true);
}

QueryTicketPtr Middleware::Submit(const QueryRequest& request) {
  return default_session_->Submit(request);
}

Result<PreparedHandle> Middleware::PrepareShared(const std::string& sql_template,
                                                 bool pin) {
  // Parse outside the lock; dedupe on the canonical (formatting-insensitive)
  // form so equivalent templates share one statement and one cache keyspace.
  VP_ASSIGN_OR_RETURN(sql::PreparedPtr stmt, sql::PrepareStatement(sql_template));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_canonical_.find(stmt->canonical_sql);
  if (it != by_canonical_.end()) {
    StatementEntry& entry = statements_[it->second];
    if (pin) {
      // Pins stack: deduped Prepares from independent clients each hold
      // one, so no single Release can strand the others.
      if (entry.pin_count++ == 0) {
        statement_lru_.erase(entry.lru_it);  // pinned: not a victim
      }
    } else if (entry.pin_count == 0) {
      statement_lru_.splice(statement_lru_.begin(), statement_lru_, entry.lru_it);
    }
    if (!pin) ++entry.transient_uses;
    return it->second;
  }
  const PreparedHandle handle = next_handle_++;
  StatementEntry entry;
  entry.stmt = std::move(stmt);
  entry.pin_count = pin ? 1 : 0;
  entry.transient_uses = pin ? 0 : 1;
  if (!pin) {
    statement_lru_.push_front(handle);
    entry.lru_it = statement_lru_.begin();
  }
  by_canonical_.emplace(entry.stmt->canonical_sql, handle);
  statements_.emplace(handle, std::move(entry));
  ++stats_.prepared_statements;
  EvictStatementsLocked();
  return handle;
}

void Middleware::Release(PreparedHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(handle);
  if (it == statements_.end() || it->second.pin_count == 0) return;
  if (--it->second.pin_count > 0) return;  // other Prepare holders remain
  // Most-recently-used position: the statement was live until just now, so
  // it outlasts colder ad-hoc churn before becoming a victim.
  statement_lru_.push_front(handle);
  it->second.lru_it = statement_lru_.begin();
  EvictStatementsLocked();
}

void Middleware::ReleaseTransient(PreparedHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(handle);
  if (it == statements_.end()) return;
  if (it->second.transient_uses > 0) --it->second.transient_uses;
  EvictStatementsLocked();
}

// LRU eviction of unreferenced canonical statements, walking the order list
// from its cold end. Pinned entries (public Prepare handles, finitely many
// templates by design) are not in the list at all, and entries with an
// in-flight transient use are skipped, so live handles keep resolving;
// everything else — the ad-hoc Execute churn — is bounded by the cap.
void Middleware::EvictStatementsLocked() {
  const size_t cap = options_.max_prepared_statements;
  if (cap == 0) return;
  auto it = statement_lru_.end();
  while (statements_.size() > cap && it != statement_lru_.begin()) {
    --it;
    auto entry = statements_.find(*it);
    if (entry->second.transient_uses > 0) continue;  // in flight: skip
    by_canonical_.erase(entry->second.stmt->canonical_sql);
    statements_.erase(entry);
    it = statement_lru_.erase(it);  // next loop steps back past the gap
  }
}

size_t Middleware::registry_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statements_.size();
}

sql::PreparedPtr Middleware::StatementFor(PreparedHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(handle);
  return it == statements_.end() ? nullptr : it->second.stmt;
}

std::string Middleware::CacheKeyFor(const sql::PreparedStatement& stmt,
                                    const std::vector<QueryParam>& params) {
  std::string key = stmt.canonical_sql;
  // One segment per declared parameter, in declaration order; values render
  // as SQL literals, so the key is exact and independent of both SQL text
  // formatting and the order params were passed in.
  for (const std::string& name : stmt.params) {
    key += '\x1f';
    key += name;
    key += '=';
    const QueryParam* found = nullptr;
    for (const QueryParam& p : params) {
      if (p.name == name) {
        found = &p;
        break;
      }
    }
    if (found == nullptr) {
      key += "<unbound>";
    } else if (found->value.is_array()) {
      key += '[';
      for (size_t i = 0; i < found->value.array().size(); ++i) {
        if (i > 0) key += ',';
        key += expr::SqlLiteral(found->value.array()[i]);
      }
      key += ']';
    } else {
      key += expr::SqlLiteral(found->value.scalar());
    }
  }
  return key;
}

// A follower parks its worker thread until the leader finishes — acceptable
// at our pool sizes since duplicates collapse within one wave; a per-key
// waiter list resolved in the leader's epilogue would free the thread if
// pools grow large.
void Middleware::EnterInFlight(const std::string& key) {
  std::unique_lock<std::mutex> lock(flight_mu_);
  flight_cv_.wait(lock, [&] { return in_flight_.count(key) == 0; });
  in_flight_.insert(key);
}

void Middleware::LeaveInFlight(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    in_flight_.erase(key);
  }
  flight_cv_.notify_all();
}

void Middleware::RunQueryTask(std::shared_ptr<Session> session, QueryTicketPtr ticket,
                              sql::PreparedPtr stmt, std::vector<QueryParam> params,
                              std::string key) {
  if (!ticket->BeginExecution()) {
    // Cancelled while queued: the ticket already resolved to Cancelled.
    RecordCancelled(session.get());
    return;
  }

  // Single-flight: identical concurrent queries execute once; followers wait
  // and then resolve from the cache the leader filled.
  EnterInFlight(key);

  // Note: a same-session duplicate that completed while this task was
  // queued resolves through the *server* cache below, not the session
  // cache — at submit time the client did not have the result, so the
  // modeled system still pays the round trip and transfer.
  QueryResponse response;
  bool from_dbms = false;
  {
    bool server_hit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      server_hit = server_cache_.Get(key, &response.table);
    }
    if (server_hit) {
      response.bytes = EstimateEncodedBytes(*response.table, options_.binary_encoding);
      response.latency_millis =
          TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
      response.source = QueryResponse::Source::kServerCache;
    } else {
      // Bind once; the tile probe and the DBMS both consume the bound AST,
      // so parameter resolution cost (and errors) are shared. Splitting
      // ExecuteBound into Bind + Execute is behavior-preserving: that is
      // exactly its implementation.
      rewrite::ParamResolver resolver(params);
      auto deliver_error = [&](const Status& st) {
        LeaveInFlight(key);
        if (ticket->CommitDelivery()) {
          RecordError(session.get());
        } else {
          RecordCancelled(session.get());
        }
        ticket->Deliver(Status(st.code(), "middleware: " + st.message() + " [" +
                                              stmt->canonical_sql + "]"));
      };
      auto bound = sql::BindStatement(*stmt->stmt, resolver);
      if (!bound.ok()) {
        deliver_error(bound.status());
        return;
      }
      std::optional<tiles::TileAnswer> tile;
      if (tile_store_ != nullptr) tile = tile_store_->TryAnswer(**bound);
      if (tile.has_value()) {
        // Served from the precomputed aggregation tree: the server touches
        // `bins_touched` slots instead of scanning base rows.
        response.table = tile->table;
        response.bytes = EstimateEncodedBytes(*response.table, options_.binary_encoding);
        response.latency_millis =
            ServerComputeMillis(tile->bins_touched, 1, options_.latency) +
            TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
        response.source = QueryResponse::Source::kTileStore;
      } else {
        if (options_.before_dbms_execute) options_.before_dbms_execute(key);
        auto result = engine_->Execute(**bound);
        if (!result.ok()) {
          deliver_error(result.status());
          return;
        }
        from_dbms = true;
        response.table = result->table;
        response.bytes = EstimateEncodedBytes(*response.table, options_.binary_encoding);
        response.latency_millis =
            ServerComputeMillis(result->stats.rows_processed + result->stats.rows_scanned,
                                result->stats.num_operators, options_.latency) +
            TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
        response.source = QueryResponse::Source::kDbms;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        server_cache_.Put(key, response.table);
      }
    }
    session->CachePut(key, response.table);
  }
  LeaveInFlight(key);

  if (from_dbms) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dbms_executions;
    std::lock_guard<std::mutex> slock(session->mu_);
    ++session->stats_.dbms_executions;
  }

  if (ticket->CommitDelivery()) {
    RecordCompletion(session.get(), response);
  } else {
    RecordCancelled(session.get());
  }
  ticket->Deliver(std::move(response));
}

void Middleware::RecordSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
}

// dbms_executions is counted at execution time in RunQueryTask (the work
// happened even when the delivery is later turned into a cancellation), so
// completion recording only attributes the delivery tier.
void Middleware::RecordCompletion(Session* session, const QueryResponse& response) {
  auto bump = [&response](auto* stats) {
    ++stats->queries;
    switch (response.source) {
      case QueryResponse::Source::kClientCache:
        ++stats->client_cache_hits;
        break;
      case QueryResponse::Source::kServerCache:
        ++stats->server_cache_hits;
        break;
      case QueryResponse::Source::kTileStore:
        ++stats->tile_hits;
        break;
      case QueryResponse::Source::kDbms:
        break;  // counted at execution time
    }
    stats->bytes_transferred += response.bytes;
    stats->total_latency_ms += response.latency_millis;
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    bump(&stats_);
  }
  std::lock_guard<std::mutex> lock(session->mu_);
  bump(&session->stats_);
}

void Middleware::RecordCancelled(Session* session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cancelled;
  }
  std::lock_guard<std::mutex> lock(session->mu_);
  ++session->stats_.cancelled;
}

void Middleware::RecordError(Session* session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  std::lock_guard<std::mutex> lock(session->mu_);
  ++session->stats_.errors;
}

Middleware::Stats Middleware::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Middleware::ResetStats() {
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t sessions = stats_.sessions;
    size_t prepared = stats_.prepared_statements;
    stats_ = Stats();
    stats_.sessions = sessions;
    stats_.prepared_statements = prepared;
    for (const auto& w : sessions_) {
      if (auto s = w.lock()) live.push_back(std::move(s));
    }
  }
  for (const auto& s : live) {
    std::lock_guard<std::mutex> lock(s->mu_);
    s->stats_ = Session::Stats();
  }
}

void Middleware::ClearCaches() {
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    server_cache_.Clear();
    for (const auto& w : sessions_) {
      if (auto s = w.lock()) live.push_back(std::move(s));
    }
  }
  for (const auto& s : live) s->ClearCache();
}

}  // namespace runtime
}  // namespace vegaplus
