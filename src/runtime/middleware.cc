#include "runtime/middleware.h"

#include <algorithm>

#include "data/ipc.h"

namespace vegaplus {
namespace runtime {

size_t EstimateEncodedBytes(const data::Table& table, bool binary, size_t sample_rows) {
  const size_t n = table.num_rows();
  if (n == 0) {
    return binary ? data::SerializeBinary(table).size()
                  : data::SerializeJsonRows(table).size();
  }
  if (n <= sample_rows) {
    return binary ? data::SerializeBinary(table).size()
                  : data::SerializeJsonRows(table).size();
  }
  data::TablePtr head = table.Head(sample_rows);
  size_t sampled = binary ? data::SerializeBinary(*head).size()
                          : data::SerializeJsonRows(*head).size();
  return static_cast<size_t>(static_cast<double>(sampled) * static_cast<double>(n) /
                             static_cast<double>(sample_rows));
}

Result<rewrite::QueryResponse> Middleware::Execute(const std::string& sql) {
  ++stats_.queries;
  rewrite::QueryResponse response;

  // Tier 1: client cache — no network at all.
  if (client_cache_.Get(sql, &response.table)) {
    ++stats_.client_cache_hits;
    response.latency_millis = 0.05;  // local dictionary lookup
    response.bytes = 0;
    response.source = rewrite::QueryResponse::Source::kClientCache;
    stats_.total_latency_ms += response.latency_millis;
    return response;
  }

  // Tier 2: middleware cache — round trip + transfer, no DBMS work.
  if (server_cache_.Get(sql, &response.table)) {
    ++stats_.server_cache_hits;
    response.bytes = EstimateEncodedBytes(*response.table, options_.binary_encoding);
    response.latency_millis =
        TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
    response.source = rewrite::QueryResponse::Source::kServerCache;
  } else {
    // Tier 3: the DBMS.
    auto result = engine_->Query(sql);
    if (!result.ok()) {
      return Status(result.status().code(), "middleware: " + result.status().message() +
                                                " [" + sql + "]");
    }
    ++stats_.dbms_executions;
    response.table = result->table;
    response.bytes = EstimateEncodedBytes(*response.table, options_.binary_encoding);
    response.latency_millis =
        ServerComputeMillis(result->stats.rows_processed + result->stats.rows_scanned,
                            result->stats.num_operators, options_.latency) +
        TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
    response.source = rewrite::QueryResponse::Source::kDbms;
    server_cache_.Put(sql, response.table);
  }

  client_cache_.Put(sql, response.table);
  stats_.bytes_transferred += response.bytes;
  stats_.total_latency_ms += response.latency_millis;
  return response;
}

}  // namespace runtime
}  // namespace vegaplus
