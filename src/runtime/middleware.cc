#include "runtime/middleware.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "data/ipc.h"
#include "expr/kernels/kernels.h"
#include "expr/sql_translator.h"
#include "storage/stats.h"

namespace vegaplus {
namespace runtime {

using rewrite::PreparedHandle;
using rewrite::QueryParam;
using rewrite::QueryRequest;
using rewrite::QueryResponse;
using rewrite::QueryTicket;
using rewrite::QueryTicketPtr;

namespace {

using Deadline = std::optional<std::chrono::steady_clock::time_point>;

// FNV-1a, for deterministic per-(key, attempt) backoff jitter.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Opaque digest of a cache key, for the hedge attempt's fault-injector
// identity. Fault rules match by *substring*, and every substring of `key`
// is also a substring of "key#1" — so the hedge must not reuse the primary's
// key with a suffix, or rules stalling the primary would stall the hedge
// too and hedging could never win. "hedge:<digest>#1" keeps the hedge
// individually addressable (and all hedges via the "hedge:" prefix) while
// sharing no substring with the primary.
std::string HedgeInjectorKey(const std::string& key) {
  char digest[17];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(HashKey(key)));
  return std::string("hedge:") + digest + "#1";
}

// Shared state of one hedged execution race. Ownership protocol: only the
// *primary* worker sets `decided` (by finishing first or by adopting the
// hedge's result); the hedge side only publishes hedge_started/hedge_done/
// hedge_result. That single-writer rule is what makes the first-success
// claim race-free.
struct HedgeRace {
  std::mutex mu;
  std::condition_variable cv;
  bool decided = false;        // primary claimed an outcome; hedge no-ops
  bool hedge_started = false;  // hedge began backend work
  bool hedge_done = false;     // hedge finished (or declined to start)
  std::optional<Result<sql::QueryResult>> hedge_result;
  double hedge_fault_ms = 0;   // injected stall charged to the hedge attempt
  double threshold_ms = 0;     // delay before the hedge starts
  /// Child of the primary's token: the primary abandons a losing hedge
  /// through it without touching its own cancellation state, while a fired
  /// parent (superseded ticket) stops both attempts.
  std::shared_ptr<common::CancelToken> hedge_token;
};

// Sum `from` into `into`, field by field.
void Accumulate(SessionStats* into, const SessionStats& from) {
  into->submitted += from.submitted;
  into->queries += from.queries;
  into->client_cache_hits += from.client_cache_hits;
  into->server_cache_hits += from.server_cache_hits;
  into->tile_hits += from.tile_hits;
  into->dbms_executions += from.dbms_executions;
  into->cancelled += from.cancelled;
  into->errors += from.errors;
  into->retries += from.retries;
  into->deadline_exceeded += from.deadline_exceeded;
  into->shed += from.shed;
  into->degraded_responses += from.degraded_responses;
  into->hedged_requests += from.hedged_requests;
  into->hedge_wins += from.hedge_wins;
  into->cancelled_mid_flight += from.cancelled_mid_flight;
  into->bytes_transferred += from.bytes_transferred;
  into->total_latency_ms += from.total_latency_ms;
}

// Sleep for `ms`, but never past `deadline`; the caller re-checks the
// deadline afterwards.
void SleepCapped(double ms, const Deadline& deadline) {
  if (ms <= 0) return;
  auto wake = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(ms));
  if (deadline && *deadline < wake) wake = *deadline;
  std::this_thread::sleep_until(wake);
}

bool PastDeadline(const Deadline& deadline) {
  return deadline && std::chrono::steady_clock::now() >= *deadline;
}

bool IsTransient(const Status& st) {
  return st.IsUnavailable() || st.IsIOError();
}

}  // namespace

size_t EstimateEncodedBytes(const data::Table& table, bool binary, size_t sample_rows) {
  const size_t n = table.num_rows();
  if (n == 0) {
    return binary ? data::SerializeBinary(table).size()
                  : data::SerializeJsonRows(table).size();
  }
  if (n <= sample_rows) {
    return binary ? data::SerializeBinary(table).size()
                  : data::SerializeJsonRows(table).size();
  }
  data::TablePtr head = table.Head(sample_rows);
  size_t sampled = binary ? data::SerializeBinary(*head).size()
                          : data::SerializeJsonRows(*head).size();
  return static_cast<size_t>(static_cast<double>(sampled) * static_cast<double>(n) /
                             static_cast<double>(sample_rows));
}

// ---- Session ----

Session::Session(Middleware* owner, uint64_t id, size_t cache_capacity,
                 size_t cache_max_result_rows, QueryCache::Policy cache_policy,
                 std::shared_ptr<SessionStatsBlock> stats_block)
    : owner_(owner), id_(id),
      cache_(cache_capacity, cache_max_result_rows, cache_policy),
      stats_block_(std::move(stats_block)) {}

Result<QueryResponse> Session::Execute(const std::string& sql) {
  // Transient registration: ad-hoc literal-inlined SQL must not pin a
  // registry entry forever (legacy clients issue unbounded distinct
  // strings). The transient reference keeps the statement resolvable until
  // this call's submission finishes, then the entry becomes evictable.
  auto handle = owner_->PrepareShared(sql, /*pin=*/false);
  if (!handle.ok()) {
    return Status(handle.status().code(),
                  "middleware: " + handle.status().message() + " [" + sql + "]");
  }
  QueryRequest request;
  request.handle = *handle;
  Result<QueryResponse> response = Submit(request)->Await();
  owner_->ReleaseTransient(*handle);
  return response;
}

Result<PreparedHandle> Session::Prepare(const std::string& sql_template) {
  return owner_->PrepareShared(sql_template, /*pin=*/true);
}

QueryTicketPtr Session::Submit(const QueryRequest& request) {
  sql::PreparedPtr stmt = owner_->StatementFor(request.handle);
  if (!stmt) {
    return QueryTicket::Ready(
        Status::InvalidArgument("middleware: unknown prepared handle"),
        request.generation);
  }
  std::string key = Middleware::CacheKeyFor(*stmt, request.params);
  auto ticket = std::make_shared<QueryTicket>(request.generation);
  {
    std::lock_guard<std::mutex> lock(stats_block_->mu);
    ++stats_block_->stats.submitted;
  }
  // The deadline is anchored at submit time: queue wait, single-flight wait,
  // backoff — everything counts against it.
  Deadline deadline;
  if (request.deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(request.deadline_ms));
  }

  // Supersession: a newer generation within the same scope makes the older
  // in-flight request dead weight — cancel instead of decoding it. Sync
  // Execute() calls (generation 0) neither supersede nor get superseded.
  // Claiming the scope's slot is atomic with the generation comparison: if a
  // concurrent submit with a newer generation won the race, this request is
  // the superseded one and never runs.
  if (request.generation > 0) {
    const std::pair<uint64_t, PreparedHandle> scope{request.client_id, request.handle};
    bool superseded_on_arrival = false;
    rewrite::QueryTicketPtr displaced;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Occasional sweep so dead scopes (e.g. VDTs of discarded dataflows)
      // do not accumulate for the session's lifetime.
      if (last_ticket_.size() > 64) {
        for (auto it = last_ticket_.begin(); it != last_ticket_.end();) {
          it = it->second.expired() ? last_ticket_.erase(it) : std::next(it);
        }
      }
      auto& slot = last_ticket_[scope];
      rewrite::QueryTicketPtr prev = slot.lock();
      if (prev && !prev->done() && prev->generation() > request.generation) {
        superseded_on_arrival = true;
      } else {
        if (prev && prev->generation() < request.generation) displaced = std::move(prev);
        slot = ticket;
      }
    }
    // A displaced ticket that had not completed now resolves to Cancelled;
    // its queued task accounts for the cancellation when the worker reaches
    // it.
    if (displaced) displaced->Cancel();
    if (superseded_on_arrival) {
      ticket->Cancel();
      owner_->RecordCancelled(this);
      return ticket;
    }
  }

  // Tier 1: client cache — a local dictionary lookup, no network at all.
  data::TablePtr cached;
  if (CacheGet(key, &cached)) {
    QueryResponse response;
    response.table = std::move(cached);
    response.latency_millis = 0.05;
    response.bytes = 0;
    response.source = QueryResponse::Source::kClientCache;
    if (ticket->CommitDelivery()) {
      owner_->RecordCompletion(this, response);
    } else {
      owner_->RecordCancelled(this);
    }
    ticket->Deliver(std::move(response));
    return ticket;
  }

  // The session is charged for the task from submission until a worker picks
  // it up; the count is the fairness signal for shed-the-heaviest admission.
  queued_.fetch_add(1, std::memory_order_relaxed);
  auto task = [owner = owner_, self = shared_from_this(), ticket, stmt,
               params = request.params, key = std::move(key),
               deadline]() mutable {
    self->queued_.fetch_sub(1, std::memory_order_relaxed);
    owner->RunQueryTask(std::move(self), std::move(ticket), std::move(stmt),
                        std::move(params), std::move(key), deadline);
  };
  WorkerPool::Admission admission;
  if (owner_->ShouldBypassQueueBound(this)) {
    // Saturated queue, but a heavier session is responsible: admit past the
    // bound (Submit ignores it) so this client is not punished for someone
    // else's flood. Sheds stay attributed to the saturating session.
    admission = owner_->pool_->Submit(std::move(task))
                    ? WorkerPool::Admission::kAccepted
                    : WorkerPool::Admission::kShutdown;
  } else {
    admission = owner_->pool_->TrySubmit(std::move(task));
  }
  switch (admission) {
    case WorkerPool::Admission::kAccepted:
      break;
    case WorkerPool::Admission::kShed:
      // Bounded queue full: refuse now rather than queue a result the
      // client will receive long after it stopped caring.
      queued_.fetch_sub(1, std::memory_order_relaxed);
      if (ticket->CommitDelivery()) {
        owner_->RecordShed(this);
      } else {
        owner_->RecordCancelled(this);
      }
      ticket->Deliver(
          Status::Unavailable("middleware overloaded: request shed"));
      break;
    case WorkerPool::Admission::kShutdown:
      // Pool already shutting down: no worker will ever run the task, so the
      // ticket must resolve here — otherwise Await would hang forever.
      queued_.fetch_sub(1, std::memory_order_relaxed);
      ticket->Cancel();
      owner_->RecordCancelled(this);
      break;
  }
  return ticket;
}

Session::Stats Session::stats() const {
  std::lock_guard<std::mutex> lock(stats_block_->mu);
  return stats_block_->stats;
}

void Session::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Clear();
}

bool Session::CacheGet(const std::string& key, data::TablePtr* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.Get(key, out);
}

void Session::CachePut(const std::string& key, data::TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Put(key, std::move(table));
}

// ---- Middleware ----

Middleware::Middleware(const sql::Engine* engine, MiddlewareOptions options)
    : engine_(engine), options_(std::move(options)),
      engine_config_(options_.engine_config.value_or(EngineConfig::Current())),
      server_cache_(options_.enable_server_cache ? options_.cache_capacity : 0,
                    options_.cache_max_result_rows, options_.cache_policy),
      stale_cache_(options_.enable_degraded_serving ? options_.stale_cache_capacity : 0,
                   options_.cache_max_result_rows, QueryCache::Policy::kLru),
      breaker_(std::make_unique<CircuitBreaker>(options_.circuit_breaker)),
      pool_(std::make_unique<WorkerPool>(options_.worker_threads,
                                         options_.max_queue_depth)) {
  if (engine_config_.tile_serving) {
    tile_store_ = std::make_unique<tiles::TileStore>(engine_, options_.tile_options);
  }
  if (options_.fault_injection.has_value()) {
    fault_injector_ = std::make_unique<FaultInjector>(*options_.fault_injection);
  }
  // Storage counters are process-wide; rebase on construction so this
  // middleware reports only its own lifetime's activity.
  storage_chunks_pruned_baseline_ = storage::ChunksPruned();
  storage_morsels_pruned_baseline_ = storage::MorselsPruned();
  storage_chunks_paged_in_baseline_ = storage::ChunksPagedIn();
  kernel_bitmap_selections_baseline_ = kernels::BitmapSelections();
  kernel_index_selections_baseline_ = kernels::IndexSelections();
  kernel_scalar_fallbacks_baseline_ = kernels::ScalarFallbacks();
  default_session_ = CreateSession();
}

// Member destruction order does the work: pool_ is declared last, so the
// workers drain before the registry, caches, and sessions above them die.
Middleware::~Middleware() = default;

void Middleware::Shutdown() { pool_->Shutdown(); }

std::shared_ptr<Session> Middleware::CreateSession() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t client_capacity = options_.enable_client_cache ? options_.cache_capacity : 0;
  auto block = std::make_shared<SessionStatsBlock>();
  auto session = std::shared_ptr<Session>(
      new Session(this, next_session_id_++, client_capacity,
                  options_.cache_max_result_rows, options_.cache_policy, block));
  // Fold and drop dead sessions while we are here (benchmarks create many).
  PruneSessionsLocked();
  sessions_.push_back(SessionSlot{session, std::move(block)});
  ++sessions_created_;
  return session;
}

Result<QueryResponse> Middleware::Execute(const std::string& sql) {
  return default_session_->Execute(sql);
}

Result<PreparedHandle> Middleware::Prepare(const std::string& sql_template) {
  return PrepareShared(sql_template, /*pin=*/true);
}

QueryTicketPtr Middleware::Submit(const QueryRequest& request) {
  return default_session_->Submit(request);
}

Result<PreparedHandle> Middleware::PrepareShared(const std::string& sql_template,
                                                 bool pin) {
  // Parse outside the lock; dedupe on the canonical (formatting-insensitive)
  // form so equivalent templates share one statement and one cache keyspace.
  VP_ASSIGN_OR_RETURN(sql::PreparedPtr stmt, sql::PrepareStatement(sql_template));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_canonical_.find(stmt->canonical_sql);
  if (it != by_canonical_.end()) {
    StatementEntry& entry = statements_[it->second];
    if (pin) {
      // Pins stack: deduped Prepares from independent clients each hold
      // one, so no single Release can strand the others.
      if (entry.pin_count++ == 0) {
        statement_lru_.erase(entry.lru_it);  // pinned: not a victim
      }
    } else if (entry.pin_count == 0) {
      statement_lru_.splice(statement_lru_.begin(), statement_lru_, entry.lru_it);
    }
    if (!pin) ++entry.transient_uses;
    return it->second;
  }
  const PreparedHandle handle = next_handle_++;
  StatementEntry entry;
  entry.stmt = std::move(stmt);
  entry.pin_count = pin ? 1 : 0;
  entry.transient_uses = pin ? 0 : 1;
  if (!pin) {
    statement_lru_.push_front(handle);
    entry.lru_it = statement_lru_.begin();
  }
  by_canonical_.emplace(entry.stmt->canonical_sql, handle);
  statements_.emplace(handle, std::move(entry));
  ++prepared_statements_created_;
  EvictStatementsLocked();
  return handle;
}

void Middleware::Release(PreparedHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(handle);
  if (it == statements_.end() || it->second.pin_count == 0) return;
  if (--it->second.pin_count > 0) return;  // other Prepare holders remain
  // Most-recently-used position: the statement was live until just now, so
  // it outlasts colder ad-hoc churn before becoming a victim.
  statement_lru_.push_front(handle);
  it->second.lru_it = statement_lru_.begin();
  EvictStatementsLocked();
}

void Middleware::ReleaseTransient(PreparedHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(handle);
  if (it == statements_.end()) return;
  if (it->second.transient_uses > 0) --it->second.transient_uses;
  EvictStatementsLocked();
}

// LRU eviction of unreferenced canonical statements, walking the order list
// from its cold end. Pinned entries (public Prepare handles, finitely many
// templates by design) are not in the list at all, and entries with an
// in-flight transient use are skipped, so live handles keep resolving;
// everything else — the ad-hoc Execute churn — is bounded by the cap.
void Middleware::EvictStatementsLocked() {
  const size_t cap = options_.max_prepared_statements;
  if (cap == 0) return;
  auto it = statement_lru_.end();
  while (statements_.size() > cap && it != statement_lru_.begin()) {
    --it;
    auto entry = statements_.find(*it);
    if (entry->second.transient_uses > 0) continue;  // in flight: skip
    by_canonical_.erase(entry->second.stmt->canonical_sql);
    statements_.erase(entry);
    it = statement_lru_.erase(it);  // next loop steps back past the gap
  }
}

size_t Middleware::registry_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statements_.size();
}

sql::PreparedPtr Middleware::StatementFor(PreparedHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(handle);
  return it == statements_.end() ? nullptr : it->second.stmt;
}

std::string Middleware::CacheKeyFor(const sql::PreparedStatement& stmt,
                                    const std::vector<QueryParam>& params) {
  std::string key = stmt.canonical_sql;
  // One segment per declared parameter, in declaration order; values render
  // as SQL literals, so the key is exact and independent of both SQL text
  // formatting and the order params were passed in.
  for (const std::string& name : stmt.params) {
    key += '\x1f';
    key += name;
    key += '=';
    const QueryParam* found = nullptr;
    for (const QueryParam& p : params) {
      if (p.name == name) {
        found = &p;
        break;
      }
    }
    if (found == nullptr) {
      key += "<unbound>";
    } else if (found->value.is_array()) {
      key += '[';
      for (size_t i = 0; i < found->value.array().size(); ++i) {
        if (i > 0) key += ',';
        key += expr::SqlLiteral(found->value.array()[i]);
      }
      key += ']';
    } else {
      key += expr::SqlLiteral(found->value.scalar());
    }
  }
  return key;
}

// A follower parks its worker thread until the leader finishes — acceptable
// at our pool sizes since duplicates collapse within one wave; a per-key
// waiter list resolved in the leader's epilogue would free the thread if
// pools grow large.
bool Middleware::EnterInFlight(const std::string& key,
                               std::optional<std::chrono::steady_clock::time_point>
                                   deadline) {
  std::unique_lock<std::mutex> lock(flight_mu_);
  const auto free = [&] { return in_flight_.count(key) == 0; };
  if (deadline) {
    if (!flight_cv_.wait_until(lock, *deadline, free)) return false;
  } else {
    flight_cv_.wait(lock, free);
  }
  in_flight_.insert(key);
  return true;
}

void Middleware::LeaveInFlight(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    in_flight_.erase(key);
  }
  flight_cv_.notify_all();
}

void Middleware::RunQueryTask(std::shared_ptr<Session> session, QueryTicketPtr ticket,
                              sql::PreparedPtr stmt, std::vector<QueryParam> params,
                              std::string key, Deadline deadline) {
  if (!ticket->BeginExecution()) {
    // Cancelled while queued: the ticket already resolved to Cancelled.
    RecordCancelled(session.get());
    return;
  }

  // Cooperative cancellation: one token per request, fired by ticket
  // cancellation (supersession, client abandon) or by the request deadline.
  // The engine polls it at morsel checkpoints, so a fired token reclaims
  // this worker within one morsel instead of after the full scan.
  std::shared_ptr<common::CancelToken> token;
  if (engine_config_.cooperative_cancel) {
    token = deadline.has_value()
                ? std::make_shared<common::CancelToken>(*deadline)
                : std::make_shared<common::CancelToken>();
    ticket->LinkCancel(token);
  }

  auto deliver_error = [&](const Status& st) {
    if (ticket->CommitDelivery()) {
      RecordError(session.get(), st);
    } else {
      RecordCancelled(session.get());
    }
    ticket->Deliver(Status(st.code(), "middleware: " + st.message() + " [" +
                                          stmt->canonical_sql + "]"));
  };

  // Bind first: a malformed request fails fast without claiming the
  // single-flight slot or touching the fault machinery. The tile probe and
  // the DBMS both consume the bound AST, so parameter resolution cost (and
  // errors) are shared. Splitting ExecuteBound into Bind + Execute is
  // behavior-preserving: that is exactly its implementation.
  rewrite::ParamResolver resolver(params);
  auto bound = sql::BindStatement(*stmt->stmt, resolver);
  if (!bound.ok()) {
    deliver_error(bound.status());
    return;
  }

  auto deliver_response = [&](QueryResponse resp) {
    if (ticket->CommitDelivery()) {
      RecordCompletion(session.get(), resp);
    } else {
      RecordCancelled(session.get());
    }
    ticket->Deliver(std::move(resp));
  };

  // Degraded fallback for every "fresh execution impossible" exit: an
  // archived stale result for this exact key, else the same shape answered
  // from a coarser already-built tile level. False = nothing servable.
  auto deliver_degraded = [&]() -> bool {
    if (!options_.enable_degraded_serving) return false;
    QueryResponse resp;
    resp.degraded = true;
    bool have_stale;
    {
      std::lock_guard<std::mutex> lock(mu_);
      have_stale = stale_cache_.Get(key, &resp.table);
    }
    if (have_stale) {
      resp.bytes = EstimateEncodedBytes(*resp.table, options_.binary_encoding);
      // No server compute: the archived bytes just cross the wire.
      resp.latency_millis =
          TransferMillis(resp.bytes, options_.binary_encoding, options_.latency);
      resp.source = QueryResponse::Source::kStaleCache;
    } else {
      if (tile_store_ == nullptr) return false;
      std::optional<tiles::TileAnswer> tile = tile_store_->TryAnswerCoarser(**bound);
      if (!tile.has_value()) return false;
      resp.table = tile->table;
      resp.bytes = EstimateEncodedBytes(*resp.table, options_.binary_encoding);
      resp.latency_millis =
          ServerComputeMillis(tile->bins_touched, 1, options_.latency) +
          TransferMillis(resp.bytes, options_.binary_encoding, options_.latency);
      resp.source = QueryResponse::Source::kTileStore;
    }
    deliver_response(std::move(resp));
    return true;
  };

  // Single-flight: identical concurrent queries execute once; followers wait
  // and then resolve from the cache the leader filled.
  if (!EnterInFlight(key, deadline)) {
    // Deadline expired while parked behind the leader.
    if (!deliver_degraded()) {
      deliver_error(Status::DeadlineExceeded("deadline expired awaiting execution"));
    }
    return;
  }

  // Note: a same-session duplicate that completed while this task was
  // queued resolves through the *server* cache below, not the session
  // cache — at submit time the client did not have the result, so the
  // modeled system still pays the round trip and transfer.
  QueryResponse response;
  bool from_dbms = false;
  bool server_hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    server_hit = server_cache_.Get(key, &response.table);
  }
  if (server_hit) {
    response.bytes = EstimateEncodedBytes(*response.table, options_.binary_encoding);
    response.latency_millis =
        TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
    response.source = QueryResponse::Source::kServerCache;
  } else {
    if (PastDeadline(deadline)) {
      // The deadline gates *starting* backend work; a result that exists
      // already (cache tiers above, degraded below) is still fair game.
      LeaveInFlight(key);
      if (!deliver_degraded()) {
        deliver_error(Status::DeadlineExceeded("deadline expired before execution"));
      }
      return;
    }
    std::optional<tiles::TileAnswer> tile;
    if (tile_store_ != nullptr) tile = tile_store_->TryAnswer(**bound, token.get());
    if (tile.has_value()) {
      // Served from the precomputed aggregation tree: the server touches
      // `bins_touched` slots instead of scanning base rows.
      response.table = tile->table;
      response.bytes = EstimateEncodedBytes(*response.table, options_.binary_encoding);
      response.latency_millis =
          ServerComputeMillis(tile->bins_touched, 1, options_.latency) +
          TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
      response.source = QueryResponse::Source::kTileStore;
    } else {
      // ---- DBMS execution: retry transient failures under the breaker ----
      const std::string& scope = stmt->canonical_sql;
      const size_t max_attempts = std::max<size_t>(1, options_.retry.max_attempts);
      double fault_latency_ms = 0;  // injected stalls, charged as server time
      Status failure;
      bool degradable = false;  // only transient/deadline failures may degrade

      // Hedged request: past the statement's observed tail threshold, launch
      // one duplicate attempt on another worker and take the first success.
      // TrySubmit only — under queue saturation the hedge is shed rather
      // than amplifying the overload. The hedge bypasses single-flight by
      // design: it *is* the deliberate duplicate.
      std::shared_ptr<HedgeRace> race;
      const double hedge_threshold_ms = HedgeThresholdMs(scope);
      if (hedge_threshold_ms >= 0) {
        race = std::make_shared<HedgeRace>();
        race->threshold_ms = hedge_threshold_ms;
        if (token != nullptr) {
          race->hedge_token =
              std::make_shared<common::CancelToken>(token, deadline);
        }
        auto hedge_task = [this, race, bound_stmt = *bound,
                           hedge_key = HedgeInjectorKey(key), deadline]() {
          {
            std::unique_lock<std::mutex> lk(race->mu);
            const auto start_at =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(race->threshold_ms));
            race->cv.wait_until(lk, start_at, [&] { return race->decided; });
            if (race->decided) {  // primary finished inside the threshold
              race->hedge_done = true;
              race->cv.notify_all();
              return;
            }
            race->hedge_started = true;
          }
          Status injected;
          double stall_ms = 0;
          if (fault_injector_ != nullptr) {
            FaultDecision fate = fault_injector_->OnDbmsExecute(hedge_key);
            if (fate.stall_ms > 0) {
              stall_ms = fate.stall_ms;
              SleepCapped(fate.stall_ms, deadline);
            }
            if (fate.fail) injected = fate.status;
          }
          common::QueryContext hedge_ctx{race->hedge_token};
          Result<sql::QueryResult> r =
              !injected.ok()
                  ? Result<sql::QueryResult>(injected)
                  : engine_->Execute(*bound_stmt,
                                     race->hedge_token ? &hedge_ctx : nullptr);
          std::lock_guard<std::mutex> lk(race->mu);
          race->hedge_fault_ms = stall_ms;
          race->hedge_result.emplace(std::move(r));
          race->hedge_done = true;
          race->cv.notify_all();
        };
        if (pool_->TrySubmit(std::move(hedge_task)) ==
            WorkerPool::Admission::kAccepted) {
          RecordHedgeLaunched(session.get());
        } else {
          race.reset();  // pool saturated or shutting down: no hedge
        }
      }

      // First-success claim: adopt the hedge's result if it already landed.
      // Only the primary sets `decided`, so the claim cannot be contested.
      auto claim_hedge_win = [&]() -> std::optional<sql::QueryResult> {
        if (race == nullptr) return std::nullopt;
        std::lock_guard<std::mutex> lk(race->mu);
        if (race->decided || !race->hedge_done ||
            !race->hedge_result.has_value() || !race->hedge_result->ok()) {
          return std::nullopt;
        }
        race->decided = true;
        return std::move(**race->hedge_result);
      };
      auto adopt_hedge = [&](sql::QueryResult won) {
        // A completed duplicate of the same statement: truthful evidence of
        // backend health (and it settles any probe admission the stalled
        // primary still holds).
        breaker_->RecordSuccess(scope);
        from_dbms = true;
        RecordHedgeWin(session.get());
        response.table = won.table;
        response.bytes =
            EstimateEncodedBytes(*response.table, options_.binary_encoding);
        response.latency_millis =
            race->threshold_ms + race->hedge_fault_ms +
            ServerComputeMillis(won.stats.rows_processed + won.stats.rows_scanned,
                                won.stats.num_operators, options_.latency) +
            TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
        response.source = QueryResponse::Source::kDbms;
      };
      // Close the race on every exit: a hedge still running is abandoned
      // through its token and discards its result when it finds `decided`.
      auto settle_race = [&]() {
        if (race == nullptr) return;
        std::lock_guard<std::mutex> lk(race->mu);
        if (!race->decided) {
          race->decided = true;
          if (race->hedge_token) race->hedge_token->Cancel();
          race->cv.notify_all();
        }
      };
      // An injected stall on the primary is where hedges earn their keep:
      // sleep, but wake the moment the hedge finishes instead of serving
      // out the full stall.
      auto stall_for = [&](double ms) {
        if (race == nullptr) {
          SleepCapped(ms, deadline);
          return;
        }
        auto wake = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(ms));
        if (deadline && *deadline < wake) wake = *deadline;
        std::unique_lock<std::mutex> lk(race->mu);
        race->cv.wait_until(lk, wake, [&] { return race->hedge_done; });
      };

      for (size_t attempt = 0;; ++attempt) {
        if (auto won = claim_hedge_win()) {
          adopt_hedge(std::move(*won));
          break;
        }
        bool admitted_as_probe = false;
        if (!breaker_->Admit(scope, &admitted_as_probe)) {
          // Fast fail: a known-dead statement should not burn this worker.
          failure = Status::Unavailable("circuit breaker open for statement");
          degradable = true;
          break;
        }
        if (options_.before_dbms_execute) options_.before_dbms_execute(key);
        Status injected;  // ok unless the injector fails this attempt
        if (fault_injector_ != nullptr) {
          FaultDecision fate = fault_injector_->OnDbmsExecute(key);
          if (fate.stall_ms > 0) {
            // Real sleep capped at the deadline; the *full* stall is still
            // charged as simulated latency (the modeled backend was slow).
            fault_latency_ms += fate.stall_ms;
            stall_for(fate.stall_ms);
          }
          if (fate.fail) injected = fate.status;
        }
        if (auto won = claim_hedge_win()) {
          adopt_hedge(std::move(*won));  // RecordSuccess settles the probe
          break;
        }
        if (PastDeadline(deadline)) {
          // No outcome will ever be recorded for this admission; a held
          // half-open probe slot must be released or the breaker wedges.
          if (admitted_as_probe) breaker_->AbandonProbe(scope);
          failure = Status::DeadlineExceeded("deadline expired before DBMS execution");
          degradable = true;
          break;
        }
        common::QueryContext qctx{token};
        Result<sql::QueryResult> result =
            injected.ok()
                ? engine_->Execute(**bound, token != nullptr ? &qctx : nullptr)
                : Result<sql::QueryResult>(injected);
        if (result.ok()) {
          breaker_->RecordSuccess(scope);
          from_dbms = true;
          response.table = result->table;
          response.bytes =
              EstimateEncodedBytes(*response.table, options_.binary_encoding);
          response.latency_millis =
              ServerComputeMillis(result->stats.rows_processed + result->stats.rows_scanned,
                                  result->stats.num_operators, options_.latency) +
              fault_latency_ms +
              TransferMillis(response.bytes, options_.binary_encoding, options_.latency);
          response.source = QueryResponse::Source::kDbms;
          break;
        }
        const Status& st = result.status();
        if (st.IsCancelled() || st.IsDeadlineExceeded()) {
          // Cooperative abort at a morsel checkpoint: the engine stopped
          // because *this request* was cancelled or out of time, which says
          // nothing about backend health — release any probe slot, never
          // record a breaker failure, never retry. Only the deadline flavor
          // may degrade: an explicit cancel means nobody wants any answer.
          if (admitted_as_probe) breaker_->AbandonProbe(scope);
          RecordCancelledMidFlight(session.get());
          failure = st;
          degradable = st.IsDeadlineExceeded();
          break;
        }
        if (!IsTransient(st)) {
          // Logic error (parse/type/plan): retrying cannot help, and a
          // degraded response would mask a real bug. Surface it as-is. It
          // says nothing about backend health either way, so a probe that
          // drew one releases its slot instead of recording an outcome.
          if (admitted_as_probe) breaker_->AbandonProbe(scope);
          failure = st;
          break;
        }
        breaker_->RecordFailure(scope);
        if (ticket->cancel_requested()) {
          // Superseded mid-retry: the result is dead weight; never re-spend.
          failure = st;
          break;
        }
        if (attempt + 1 >= max_attempts) {
          failure = st;
          degradable = true;
          break;
        }
        double backoff = options_.retry.initial_backoff_ms *
                         std::pow(options_.retry.backoff_multiplier,
                                  static_cast<double>(attempt));
        backoff = std::min(backoff, options_.retry.max_backoff_ms);
        // Deterministic jitter in [1 - j/2, 1 + j/2), drawn per (key,
        // attempt) so replays back off identically.
        Rng jitter_rng(HashKey(key) ^ (0x9E3779B97F4A7C15ull * (attempt + 1)));
        backoff *= 1.0 + options_.retry.jitter * (jitter_rng.NextDouble() - 0.5);
        RecordRetry(session.get());
        SleepCapped(backoff, deadline);
        if (PastDeadline(deadline)) {
          failure = Status::DeadlineExceeded("deadline expired during retry backoff");
          degradable = true;
          break;
        }
      }
      if (!from_dbms) {
        // Last look before giving up: a hedge that finished while the
        // primary was failing is a completed result — deliver it, don't
        // waste it.
        if (auto won = claim_hedge_win()) adopt_hedge(std::move(*won));
      }
      settle_race();
      if (!from_dbms) {
        LeaveInFlight(key);
        if (!degradable || !deliver_degraded()) deliver_error(failure);
        return;
      }
      RecordDbmsLatency(scope, response.latency_millis);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      server_cache_.Put(key, response.table);
      // Archive for degraded serving; unlike the tier above this copy is
      // served (marked stale) even after ClearCaches or under outage.
      stale_cache_.Put(key, response.table);
    }
  }
  session->CachePut(key, response.table);
  LeaveInFlight(key);

  if (from_dbms) {
    std::lock_guard<std::mutex> lock(session->stats_block_->mu);
    ++session->stats_block_->stats.dbms_executions;
  }
  deliver_response(std::move(response));
}

// Stats are recorded once, into the owning session's shared block; fleet
// totals are computed on read by summing live blocks plus the retired
// accumulator. dbms_executions is counted at execution time in RunQueryTask
// (the work happened even when the delivery is later turned into a
// cancellation), so completion recording only attributes the delivery tier.
// At a saturated queue the shed should land on whoever is flooding it. A
// session bypasses the bound iff some *other* live session has strictly more
// tasks queued — the strict compare makes the heaviest (and every session
// tied for heaviest) shed, so with a single submitter the behavior is
// exactly the legacy bound, and rejected_count() still equals sheds.
bool Middleware::ShouldBypassQueueBound(const Session* session) const {
  const size_t bound = options_.max_queue_depth;
  if (bound == 0 || pool_->queue_depth() < bound) return false;
  // The caller has already counted the request being admitted in queued();
  // exclude it so the comparison reflects backlog, not the decision itself.
  const size_t mine = session->queued() - 1;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slot : sessions_) {
    auto other = slot.session.lock();
    if (!other || other.get() == session) continue;
    if (other->queued() > mine) return true;
  }
  return false;
}

void Middleware::RecordCompletion(Session* session, const QueryResponse& response) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  SessionStats& stats = session->stats_block_->stats;
  ++stats.queries;
  switch (response.source) {
    case QueryResponse::Source::kClientCache:
      ++stats.client_cache_hits;
      break;
    case QueryResponse::Source::kServerCache:
      ++stats.server_cache_hits;
      break;
    case QueryResponse::Source::kTileStore:
      ++stats.tile_hits;
      break;
    case QueryResponse::Source::kStaleCache:
      break;  // attributed via degraded_responses below
    case QueryResponse::Source::kDbms:
      break;  // counted at execution time
  }
  if (response.degraded) ++stats.degraded_responses;
  stats.bytes_transferred += response.bytes;
  stats.total_latency_ms += response.latency_millis;
}

void Middleware::RecordCancelled(Session* session) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  ++session->stats_block_->stats.cancelled;
}

void Middleware::RecordError(Session* session, const Status& status) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  ++session->stats_block_->stats.errors;
  if (status.IsDeadlineExceeded()) {
    ++session->stats_block_->stats.deadline_exceeded;
  }
}

void Middleware::RecordRetry(Session* session) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  ++session->stats_block_->stats.retries;
}

// Shed requests are errors (the client got kUnavailable), with the shed
// counter attributing the cause.
void Middleware::RecordShed(Session* session) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  ++session->stats_block_->stats.shed;
  ++session->stats_block_->stats.errors;
}

void Middleware::RecordCancelledMidFlight(Session* session) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  ++session->stats_block_->stats.cancelled_mid_flight;
}

void Middleware::RecordHedgeLaunched(Session* session) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  ++session->stats_block_->stats.hedged_requests;
}

void Middleware::RecordHedgeWin(Session* session) {
  std::lock_guard<std::mutex> lock(session->stats_block_->mu);
  ++session->stats_block_->stats.hedge_wins;
}

double Middleware::HedgeThresholdMs(const std::string& scope) const {
  const HedgePolicy& hp = options_.hedge;
  if (!hp.enabled) return -1;
  if (hp.fixed_threshold_ms > 0) {
    return std::max(hp.fixed_threshold_ms, hp.min_threshold_ms);
  }
  double p95;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = latency_rings_.find(scope);
    if (it == latency_rings_.end() || it->second.count < hp.min_samples) {
      return -1;  // not enough observations to know this statement's tail
    }
    const LatencyRing& ring = it->second;
    std::vector<double> samples(ring.samples, ring.samples + ring.count);
    size_t idx = (samples.size() * 95) / 100;
    if (idx >= samples.size()) idx = samples.size() - 1;
    std::nth_element(samples.begin(), samples.begin() + static_cast<long>(idx),
                     samples.end());
    p95 = samples[idx];
  }
  return std::max(hp.min_threshold_ms, hp.latency_factor * p95);
}

void Middleware::RecordDbmsLatency(const std::string& scope, double ms) {
  // Rings exist to drive the observed-p95 threshold; with hedging off or on
  // a fixed threshold they would be dead weight per statement.
  if (!options_.hedge.enabled || options_.hedge.fixed_threshold_ms > 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  LatencyRing& ring = latency_rings_[scope];
  ring.samples[ring.next] = ms;
  ring.next = (ring.next + 1) % LatencyRing::kCapacity;
  if (ring.count < LatencyRing::kCapacity) ++ring.count;
}

void Middleware::PruneSessionsLocked() const {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->session.expired()) {
      // The block outlives the session (the slot holds it), so a retired
      // session's history folds in atomically — totals never dip. Keep the
      // block alive past the erase: destroying it while block_lock still
      // holds its mutex would unlock a dead mutex.
      std::shared_ptr<SessionStatsBlock> block = std::move(it->stats);
      {
        std::lock_guard<std::mutex> block_lock(block->mu);
        Accumulate(&retired_stats_, block->stats);
      }
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Middleware::Stats Middleware::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PruneSessionsLocked();
  SessionStats total = retired_stats_;
  for (const auto& slot : sessions_) {
    std::lock_guard<std::mutex> block_lock(slot.stats->mu);
    Accumulate(&total, slot.stats->stats);
  }
  Stats out;
  out.queries = total.queries;
  out.submitted = total.submitted;
  out.client_cache_hits = total.client_cache_hits;
  out.server_cache_hits = total.server_cache_hits;
  out.tile_hits = total.tile_hits;
  out.dbms_executions = total.dbms_executions;
  out.cancelled = total.cancelled;
  out.errors = total.errors;
  out.retries = total.retries;
  out.deadline_exceeded = total.deadline_exceeded;
  out.shed = total.shed;
  out.degraded_responses = total.degraded_responses;
  out.hedged_requests = total.hedged_requests;
  out.hedge_wins = total.hedge_wins;
  out.cancelled_mid_flight = total.cancelled_mid_flight;
  out.breaker_open = breaker_->open_transitions() - breaker_open_baseline_;
  out.prepared_statements = prepared_statements_created_;
  out.sessions = sessions_created_;
  out.bytes_transferred = total.bytes_transferred;
  out.total_latency_ms = total.total_latency_ms;
  out.storage_chunks_pruned =
      storage::ChunksPruned() - storage_chunks_pruned_baseline_;
  out.storage_morsels_pruned =
      storage::MorselsPruned() - storage_morsels_pruned_baseline_;
  out.storage_chunks_paged_in =
      storage::ChunksPagedIn() - storage_chunks_paged_in_baseline_;
  out.storage_resident_bytes = storage::ResidentBytes();
  out.kernel_bitmap_selections =
      kernels::BitmapSelections() - kernel_bitmap_selections_baseline_;
  out.kernel_index_selections =
      kernels::IndexSelections() - kernel_index_selections_baseline_;
  out.kernel_scalar_fallbacks =
      kernels::ScalarFallbacks() - kernel_scalar_fallbacks_baseline_;
  return out;
}

void Middleware::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  PruneSessionsLocked();
  retired_stats_ = SessionStats();
  for (const auto& slot : sessions_) {
    std::lock_guard<std::mutex> block_lock(slot.stats->mu);
    slot.stats->stats = SessionStats();
  }
  // sessions_created_ / prepared_statements_created_ describe registry
  // state, not traffic; they survive a reset (as before).
  breaker_open_baseline_ = breaker_->open_transitions();
  storage_chunks_pruned_baseline_ = storage::ChunksPruned();
  storage_morsels_pruned_baseline_ = storage::MorselsPruned();
  storage_chunks_paged_in_baseline_ = storage::ChunksPagedIn();
  kernel_bitmap_selections_baseline_ = kernels::BitmapSelections();
  kernel_index_selections_baseline_ = kernels::IndexSelections();
  kernel_scalar_fallbacks_baseline_ = kernels::ScalarFallbacks();
}

void Middleware::ClearCaches() {
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // stale_cache_ deliberately survives: it is the degraded-serving
    // reserve, not a freshness tier.
    server_cache_.Clear();
    for (const auto& slot : sessions_) {
      if (auto s = slot.session.lock()) live.push_back(std::move(s));
    }
  }
  for (const auto& s : live) s->ClearCache();
}

}  // namespace runtime
}  // namespace vegaplus
