// PlanExecutor: end-to-end execution of one spec under one execution plan —
// initial rendering plus a sequence of interactions — with simulated
// latencies. Also hosts the pure-Vega and VegaFusion-style baselines.
#ifndef VEGAPLUS_RUNTIME_PLAN_EXECUTOR_H_
#define VEGAPLUS_RUNTIME_PLAN_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "rewrite/plan_builder.h"
#include "runtime/middleware.h"
#include "spec/compiler.h"

namespace vegaplus {
namespace runtime {

/// \brief Simulated cost of one episode (initial rendering or one
/// interaction).
struct EpisodeCost {
  double total_ms = 0;
  double client_ms = 0;    // dataflow compute on the client
  double external_ms = 0;  // VDT round trips (server + network + decode)
  int ops_evaluated = 0;
  size_t rows_processed = 0;
};

/// \brief One signal update (an interaction event).
using SignalUpdate = std::pair<std::string, expr::EvalValue>;

/// \brief Runs a (spec, plan) pair against an engine through a Middleware
/// session. Each executor is one client: it holds its own Session (client
/// cache + stats) on a Middleware that may be private or shared with other
/// executors (the multi-user server case).
class PlanExecutor {
 public:
  /// Convenience: executor with its own private Middleware.
  /// `engine` must outlive the executor.
  PlanExecutor(const spec::VegaSpec& spec, const sql::Engine* engine,
               MiddlewareOptions options);

  /// Executor as one client of a shared Middleware (own session).
  PlanExecutor(const spec::VegaSpec& spec, std::shared_ptr<Middleware> middleware);

  /// Compile the plan's dataflow and run initial rendering.
  Result<EpisodeCost> Initialize(const rewrite::ExecutionPlan& plan);

  /// Apply one interaction to the running dataflow.
  Result<EpisodeCost> Interact(const std::vector<SignalUpdate>& updates);

  /// Output table of a data entry (null when consolidated server-side).
  data::TablePtr EntryOutput(const std::string& entry) const;

  Middleware& middleware() { return *middleware_; }
  Session& session() { return *session_; }
  const rewrite::PlanBuilder& builder() const { return builder_; }
  dataflow::Dataflow* graph() { return plan_flow_.graph.get(); }

 private:
  EpisodeCost CostOf(const dataflow::RunStats& stats) const;

  rewrite::PlanBuilder builder_;
  std::shared_ptr<Middleware> middleware_;
  std::shared_ptr<Session> session_;
  rewrite::PlanDataflow plan_flow_;
  bool initialized_ = false;
};

/// \brief Stock Vega baseline: everything client-side, data loaded from CSV
/// at initial rendering (the paper's Vega condition).
class VegaBaselineExecutor {
 public:
  VegaBaselineExecutor(const spec::VegaSpec& spec,
                       const std::map<std::string, data::TablePtr>& tables,
                       LatencyParams latency = {});

  Result<EpisodeCost> Initialize();
  Result<EpisodeCost> Interact(const std::vector<SignalUpdate>& updates);
  data::TablePtr EntryOutput(const std::string& entry) const;

 private:
  EpisodeCost CostOf(const dataflow::RunStats& stats) const;

  spec::VegaSpec spec_;
  std::map<std::string, data::TablePtr> tables_;
  LatencyParams latency_;
  spec::CompiledDataflow compiled_;
  bool initialized_ = false;
};

/// \brief VegaFusion-style baseline: greedy full pushdown of every supported
/// transform to the server, middleware cache on, no plan optimization.
class VegaFusionBaselineExecutor {
 public:
  VegaFusionBaselineExecutor(const spec::VegaSpec& spec, const sql::Engine* engine,
                             MiddlewareOptions options);

  Result<EpisodeCost> Initialize();
  Result<EpisodeCost> Interact(const std::vector<SignalUpdate>& updates);
  data::TablePtr EntryOutput(const std::string& entry) const;

 private:
  PlanExecutor executor_;
  rewrite::ExecutionPlan plan_;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_PLAN_EXECUTOR_H_
