#include "runtime/fault_injector.h"

#include <utility>

#include "common/random.h"

namespace vegaplus {
namespace runtime {

namespace {

// FNV-1a over the key: stable across platforms (std::hash is not), so the
// probabilistic schedule replays identically everywhere.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(std::move(options)) {}

FaultDecision FaultInjector::OnDbmsExecute(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_attempts_;

  FaultDecision decision;
  const FaultRule* rule = nullptr;
  for (const FaultRule& candidate : options_.rules) {
    if (candidate.match.empty() ||
        key.find(candidate.match) != std::string::npos) {
      rule = &candidate;  // first matching rule wins
      break;
    }
  }
  // Attempt counters exist only for keys some rule matches: an unmatched
  // key's attempt index decides nothing, and tracking every distinct query
  // would grow the map without bound over a long chaos bench.
  if (rule == nullptr) return decision;
  const size_t attempt = attempts_by_key_[key]++;

  decision.stall_ms = rule->stall_ms;
  bool fail = rule->permanent || attempt < rule->fail_times;
  if (!fail && rule->fail_probability > 0) {
    // One deterministic draw per (seed, key, attempt): mix the attempt
    // index into the seed so consecutive attempts get independent verdicts.
    Rng rng(options_.seed ^ HashKey(key) ^
            (0x9E3779B97F4A7C15ull * (attempt + 1)));
    fail = rng.NextDouble() < rule->fail_probability;
  }
  if (fail) {
    decision.fail = true;
    decision.status = Status(rule->code, "injected fault (attempt " +
                                             std::to_string(attempt + 1) + ")");
    ++injected_failures_;
  }
  return decision;
}

FaultDecision FaultInjector::OnStoragePageIn(const std::string& path,
                                             size_t chunk_index) {
  return OnDbmsExecute("storage:" + path + "#" + std::to_string(chunk_index));
}

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.rules.push_back(std::move(rule));
}

void FaultInjector::ClearRules() {
  std::lock_guard<std::mutex> lock(mu_);
  options_.rules.clear();
}

size_t FaultInjector::injected_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_failures_;
}

size_t FaultInjector::attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_attempts_;
}

size_t FaultInjector::tracked_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_by_key_.size();
}

}  // namespace runtime
}  // namespace vegaplus
