#include "runtime/circuit_breaker.h"

#include <chrono>
#include <utility>

namespace vegaplus {
namespace runtime {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)) {}

double CircuitBreaker::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CircuitBreaker::OpenLocked(Entry* entry) {
  entry->state = State::kOpen;
  entry->opened_at_ms = NowMs();
  entry->probe_in_flight = false;
  ++open_transitions_;
}

bool CircuitBreaker::Admit(const std::string& scope, bool* is_probe) {
  if (is_probe != nullptr) *is_probe = false;
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[scope];
  switch (entry.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (NowMs() - entry.opened_at_ms < options_.open_ms) return false;
      entry.state = State::kHalfOpen;
      entry.probe_in_flight = true;
      if (is_probe != nullptr) *is_probe = true;
      return true;  // this caller is the probe
    case State::kHalfOpen:
      // One probe at a time; everyone else keeps failing fast. A probe that
      // will never report must call AbandonProbe to free the slot.
      if (entry.probe_in_flight) return false;
      entry.probe_in_flight = true;
      if (is_probe != nullptr) *is_probe = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(const std::string& scope) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[scope];
  if (entry.state == State::kOpen) {
    // Late report from an execution admitted before the breaker opened; a
    // single straggler's success must not bypass the open_ms window
    // (symmetric with the kOpen branch in RecordFailure).
    return;
  }
  entry.consecutive_failures = 0;
  entry.probe_in_flight = false;
  entry.state = State::kClosed;
}

void CircuitBreaker::AbandonProbe(const std::string& scope) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(scope);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.state != State::kHalfOpen || !entry.probe_in_flight) return;
  // The probe learned nothing about backend health: back to open with a
  // restarted timer so the next request after open_ms becomes a fresh probe.
  // Deliberately not counted as an open transition — no failure evidence.
  entry.state = State::kOpen;
  entry.opened_at_ms = NowMs();
  entry.probe_in_flight = false;
}

void CircuitBreaker::RecordFailure(const std::string& scope) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[scope];
  switch (entry.state) {
    case State::kHalfOpen:
      OpenLocked(&entry);  // probe failed: back to open, timer restarts
      break;
    case State::kClosed:
      if (++entry.consecutive_failures >= options_.failure_threshold) {
        OpenLocked(&entry);
      }
      break;
    case State::kOpen:
      break;  // late report from an execution admitted before opening
  }
}

CircuitBreaker::State CircuitBreaker::state(const std::string& scope) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(scope);
  return it == entries_.end() ? State::kClosed : it->second.state;
}

size_t CircuitBreaker::open_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_transitions_;
}

}  // namespace runtime
}  // namespace vegaplus
