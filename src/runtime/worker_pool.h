// A fixed-size worker pool for the middleware's DBMS work. Deliberately
// minimal: FIFO task queue, no priorities, tasks drained on shutdown so a
// submitted query's ticket is always resolved before the pool dies.
//
// DBMS tasks may themselves fan work out across the shared *morsel* executor
// (common/parallel.h) when a query executes morsel-parallel. The two pools
// cannot deadlock each other: a DBMS worker inside ParallelFor always
// participates in its own morsel work (it never parks waiting for a free
// morsel thread), and morsel tasks never submit DBMS work.
//
// Submit() after (or racing with) Shutdown() is *rejected*, not silently
// enqueued: a task accepted by a pool whose workers have already drained
// would never run, and the ticket awaiting it would hang forever. Callers
// must check the return value and resolve their ticket as cancelled.
#ifndef VEGAPLUS_RUNTIME_WORKER_POOL_H_
#define VEGAPLUS_RUNTIME_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vegaplus {
namespace runtime {

class WorkerPool {
 public:
  /// Outcome of TrySubmit.
  enum class Admission {
    kAccepted,  ///< enqueued; a worker will run the task
    kShed,      ///< bounded queue full — load shed, task NOT enqueued
    kShutdown,  ///< pool is stopping — task NOT enqueued
  };

  /// Spawns `threads` workers (at least 1). `max_queue_depth` bounds the
  /// number of queued (not yet running) tasks; 0 means unbounded. When the
  /// bound is hit, TrySubmit sheds instead of blocking: under saturation the
  /// middleware prefers a fast kUnavailable over unbounded queueing, whose
  /// latency grows without limit while every queued result is likely already
  /// superseded by the time it runs.
  explicit WorkerPool(size_t threads, size_t max_queue_depth = 0);

  /// Calls Shutdown().
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue `task`. Returns false — and does not enqueue — once shutdown
  /// has begun; the caller owns resolving whatever awaited the task.
  /// Equivalent to TrySubmit() == kAccepted, except a full queue *blocks
  /// nothing and sheds nothing* — this legacy entry point ignores the bound.
  bool Submit(std::function<void()> task);

  /// Enqueue `task`, honoring the queue bound. kShed increments
  /// rejected_count(); the task is dropped and the caller owns resolving
  /// whatever awaited it (typically as kUnavailable).
  Admission TrySubmit(std::function<void()> task);

  /// Tasks currently queued (excludes tasks being run). Saturation signal.
  size_t queue_depth() const;

  /// Tasks shed by TrySubmit because the queue was full (monotonic).
  size_t rejected_count() const;

  /// Signals shutdown, runs every task still queued, joins all workers.
  /// Idempotent; safe to call concurrently with Submit (the loser of the
  /// race is rejected).
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  size_t max_queue_depth_ = 0;  // 0 = unbounded
  size_t rejected_ = 0;         // guarded by mu_
  std::vector<std::thread> workers_;

  std::mutex shutdown_mu_;  // serializes Shutdown; held across the join
  bool joined_ = false;     // guarded by shutdown_mu_
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_WORKER_POOL_H_
