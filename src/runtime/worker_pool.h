// A fixed-size worker pool for the middleware's DBMS work. Deliberately
// minimal: FIFO task queue, no priorities, tasks drained on shutdown so a
// submitted query's ticket is always resolved before the pool dies.
#ifndef VEGAPLUS_RUNTIME_WORKER_POOL_H_
#define VEGAPLUS_RUNTIME_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vegaplus {
namespace runtime {

class WorkerPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit WorkerPool(size_t threads);

  /// Signals shutdown, runs every task still queued, joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_WORKER_POOL_H_
