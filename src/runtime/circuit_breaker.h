// Per-statement circuit breaker: a dead backend statement should fail fast,
// not burn a worker (and the retry budget) on every request.
//
// Classic three-state machine, one instance per scope key (the middleware
// scopes by canonical statement):
//
//   closed ──K consecutive transient failures──▶ open
//   open   ──open_ms elapsed──▶ half-open (admits exactly one probe)
//   half-open ──probe succeeds──▶ closed
//   half-open ──probe fails────▶ open (timer restarts)
//
// While open, Admit() returns false and the middleware resolves the request
// immediately (degraded response or kUnavailable) without touching a worker-
// visible backend. Only *transient* failures (kUnavailable, kIOError) should
// be recorded — a parse or type error says nothing about backend health.
//
// The clock is injectable so state transitions are testable without real
// sleeps; production uses steady_clock.
#ifndef VEGAPLUS_RUNTIME_CIRCUIT_BREAKER_H_
#define VEGAPLUS_RUNTIME_CIRCUIT_BREAKER_H_

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

namespace vegaplus {
namespace runtime {

struct CircuitBreakerOptions {
  bool enabled = true;
  /// Consecutive transient failures that open the breaker.
  size_t failure_threshold = 5;
  /// How long an open breaker rejects before admitting a half-open probe.
  double open_ms = 250.0;
  /// Test hook: monotonic now() in milliseconds. Null = steady_clock.
  std::function<double()> clock_ms;
};

/// \brief Thread-safe keyed circuit breaker.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// May a request for `scope` execute now? Open breakers reject until
  /// open_ms has elapsed, then admit exactly one half-open probe; further
  /// requests keep failing fast until that probe's outcome is recorded (or
  /// the probe is abandoned). Always true when disabled. When `is_probe` is
  /// non-null it is set to whether this admission holds the half-open probe
  /// slot — such a caller MUST eventually call RecordSuccess, RecordFailure,
  /// or AbandonProbe, or the breaker wedges in half-open rejecting everyone.
  bool Admit(const std::string& scope, bool* is_probe = nullptr);

  /// Record the outcome of an admitted execution. Success closes a half-open
  /// breaker and resets the failure streak; a transient failure extends the
  /// streak (possibly opening the breaker) or re-opens a half-open one.
  /// Both ignore late reports that arrive while the breaker is open (the
  /// execution was admitted before it opened): an open breaker's window is
  /// decided only by its probe.
  void RecordSuccess(const std::string& scope);
  void RecordFailure(const std::string& scope);

  /// The probe admission will never report an outcome (deadline expired
  /// before execution, non-transient error that says nothing about backend
  /// health). Releases the probe slot by returning the breaker to open with
  /// a restarted timer, so a later request can probe again. No-op unless the
  /// scope is half-open with its probe outstanding.
  void AbandonProbe(const std::string& scope);

  State state(const std::string& scope) const;
  /// Closed->open and half-open->open transitions so far (monotonic).
  size_t open_transitions() const;

 private:
  struct Entry {
    State state = State::kClosed;
    size_t consecutive_failures = 0;
    double opened_at_ms = 0;
    bool probe_in_flight = false;
  };

  double NowMs() const;
  void OpenLocked(Entry* entry);

  mutable std::mutex mu_;
  const CircuitBreakerOptions options_;
  std::unordered_map<std::string, Entry> entries_;
  size_t open_transitions_ = 0;
};

}  // namespace runtime
}  // namespace vegaplus

#endif  // VEGAPLUS_RUNTIME_CIRCUIT_BREAKER_H_
