#include "runtime/plan_executor.h"

#include <algorithm>

#include "data/csv.h"

namespace vegaplus {
namespace runtime {

PlanExecutor::PlanExecutor(const spec::VegaSpec& spec, const sql::Engine* engine,
                           MiddlewareOptions options)
    : PlanExecutor(spec, std::make_shared<Middleware>(engine, std::move(options))) {}

PlanExecutor::PlanExecutor(const spec::VegaSpec& spec,
                           std::shared_ptr<Middleware> middleware)
    : builder_(spec), middleware_(std::move(middleware)),
      session_(middleware_->CreateSession()) {}

EpisodeCost PlanExecutor::CostOf(const dataflow::RunStats& stats) const {
  EpisodeCost cost;
  cost.ops_evaluated = stats.ops_evaluated;
  cost.rows_processed = stats.rows_processed;
  cost.client_ms = ClientComputeMillis(stats.rows_processed, stats.ops_evaluated,
                                       middleware_->options().latency);
  cost.external_ms = stats.external_millis;
  cost.total_ms = cost.client_ms + cost.external_ms;
  return cost;
}

Result<EpisodeCost> PlanExecutor::Initialize(const rewrite::ExecutionPlan& plan) {
  VP_ASSIGN_OR_RETURN(plan_flow_, builder_.Build(plan, session_.get()));
  initialized_ = true;
  VP_ASSIGN_OR_RETURN(dataflow::RunStats stats, plan_flow_.graph->Run());
  return CostOf(stats);
}

Result<EpisodeCost> PlanExecutor::Interact(const std::vector<SignalUpdate>& updates) {
  if (!initialized_) return Status::InvalidArgument("plan executor: not initialized");
  VP_ASSIGN_OR_RETURN(dataflow::RunStats stats, plan_flow_.graph->Update(updates));
  return CostOf(stats);
}

data::TablePtr PlanExecutor::EntryOutput(const std::string& entry) const {
  auto it = plan_flow_.entry_tails.find(entry);
  return it == plan_flow_.entry_tails.end() ? nullptr : it->second->output;
}

// ---- Pure Vega baseline ----

VegaBaselineExecutor::VegaBaselineExecutor(
    const spec::VegaSpec& spec, const std::map<std::string, data::TablePtr>& tables,
    LatencyParams latency)
    : spec_(spec), tables_(tables), latency_(latency) {}

EpisodeCost VegaBaselineExecutor::CostOf(const dataflow::RunStats& stats) const {
  EpisodeCost cost;
  cost.ops_evaluated = stats.ops_evaluated;
  cost.rows_processed = stats.rows_processed;
  cost.client_ms = ClientComputeMillis(stats.rows_processed, stats.ops_evaluated, latency_);
  cost.external_ms = stats.external_millis;
  cost.total_ms = cost.client_ms + cost.external_ms;
  return cost;
}

Result<EpisodeCost> VegaBaselineExecutor::Initialize() {
  VP_ASSIGN_OR_RETURN(compiled_, spec::CompileClientDataflow(spec_, tables_));
  initialized_ = true;
  VP_ASSIGN_OR_RETURN(dataflow::RunStats stats, compiled_.graph->Run());
  EpisodeCost cost = CostOf(stats);
  // Vega loads its source data from CSV on disk at initial rendering; charge
  // parse cost on the (sampled) CSV byte size of every root table.
  for (const auto& d : spec_.data) {
    if (!d.source.empty()) continue;
    auto it = tables_.find(!d.table.empty() ? d.table : d.name);
    if (it == tables_.end()) continue;
    const data::Table& t = *it->second;
    size_t sample = std::min<size_t>(t.num_rows(), 20000);
    size_t bytes;
    if (sample == t.num_rows()) {
      bytes = data::WriteCsvString(t).size();
    } else {
      size_t sampled = data::WriteCsvString(*t.Head(sample)).size();
      bytes = static_cast<size_t>(static_cast<double>(sampled) *
                                  static_cast<double>(t.num_rows()) /
                                  static_cast<double>(sample));
    }
    cost.external_ms += bytes * latency_.csv_parse_ns_per_byte * 1e-6;
  }
  cost.total_ms = cost.client_ms + cost.external_ms;
  return cost;
}

Result<EpisodeCost> VegaBaselineExecutor::Interact(
    const std::vector<SignalUpdate>& updates) {
  if (!initialized_) return Status::InvalidArgument("vega baseline: not initialized");
  VP_ASSIGN_OR_RETURN(dataflow::RunStats stats, compiled_.graph->Update(updates));
  return CostOf(stats);
}

data::TablePtr VegaBaselineExecutor::EntryOutput(const std::string& entry) const {
  const spec::CompiledEntry* e = compiled_.FindEntry(entry);
  return e != nullptr && e->tail != nullptr ? e->tail->output : nullptr;
}

// ---- VegaFusion-style baseline ----

VegaFusionBaselineExecutor::VegaFusionBaselineExecutor(const spec::VegaSpec& spec,
                                                       const sql::Engine* engine,
                                                       MiddlewareOptions options)
    : executor_(spec, engine, options) {
  plan_ = executor_.builder().FullPushdownPlan();
}

Result<EpisodeCost> VegaFusionBaselineExecutor::Initialize() {
  return executor_.Initialize(plan_);
}

Result<EpisodeCost> VegaFusionBaselineExecutor::Interact(
    const std::vector<SignalUpdate>& updates) {
  return executor_.Interact(updates);
}

data::TablePtr VegaFusionBaselineExecutor::EntryOutput(const std::string& entry) const {
  return executor_.EntryOutput(entry);
}

}  // namespace runtime
}  // namespace vegaplus
