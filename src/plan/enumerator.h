// Plan enumeration (§5.2): all valid client/server partitionings of the
// dataflow. "In theory 2^n plans; in reality fewer" because splits are
// constrained to rewritable prefixes and parent/child consistency.
#ifndef VEGAPLUS_PLAN_ENUMERATOR_H_
#define VEGAPLUS_PLAN_ENUMERATOR_H_

#include <vector>

#include "common/random.h"
#include "rewrite/plan_builder.h"
#include "sql/engine.h"

namespace vegaplus {
namespace plan {

struct EnumerationResult {
  std::vector<rewrite::ExecutionPlan> plans;
  /// Exact size of the full space (even when `plans` was capped).
  size_t total_space = 0;
  bool truncated = false;
};

/// Enumerate every feasible plan. When the space exceeds `max_plans`, a
/// deterministic uniform sample of `max_plans` plans is returned instead
/// (always including the all-client and full-pushdown plans) and
/// `truncated` is set.
EnumerationResult EnumeratePlans(const rewrite::PlanBuilder& builder,
                                 size_t max_plans = 100000, uint64_t seed = 17);

/// Pruning strategies (§7.2's proposed future work, implemented here):
enum class PruningStrategy {
  /// Keep only boundary splits {0, max} per data entry — the "bottom-up
  /// boundary pruning" idea: O(2^entries) instead of O(prod of prefixes).
  kBoundary,
  /// Drop plans whose total estimated fetched cardinality exceeds
  /// `cardinality_factor` x the smallest candidate's (the paper's
  /// "prune plans with output cardinality above a threshold").
  kCardinalityThreshold,
};

/// Enumerate with pruning. For kCardinalityThreshold, `engine` supplies the
/// statistics behind the cardinality estimates and `cardinality_factor`
/// the tolerance (e.g. 8.0).
EnumerationResult EnumeratePlansPruned(const rewrite::PlanBuilder& builder,
                                       PruningStrategy strategy,
                                       const sql::Engine* engine = nullptr,
                                       double cardinality_factor = 8.0);

}  // namespace plan
}  // namespace vegaplus

#endif  // VEGAPLUS_PLAN_ENUMERATOR_H_
