// Plan encoding (§5.3.1): each execution plan becomes a feature vector of
// per-operator-type counters plus per-type output-cardinality sums, with the
// cardinality features min-max normalized across the candidate set.
// Cardinalities are *estimates*: DBMS EXPLAIN-style estimation for VDT
// queries, selectivity propagation for client operators — the optimizer
// never executes candidate plans to encode them.
#ifndef VEGAPLUS_PLAN_ENCODER_H_
#define VEGAPLUS_PLAN_ENCODER_H_

#include <set>
#include <string>
#include <vector>

#include "plan/enumerator.h"
#include "sql/engine.h"

namespace vegaplus {
namespace plan {

/// Operator types tracked by the encoder, in feature order. "vdt" is the
/// data-fetching VegaDBMSTransform; "vdt_signal" the extent side queries.
const std::vector<std::string>& EncodedOpTypes();

/// Feature names ("count_filter", "card_filter", ..., "count_vdt",
/// "card_vdt", ...) for model inspection / heuristic extraction.
std::vector<std::string> FeatureNames();

/// Index helpers into a plan vector.
int CountFeatureIndex(const std::string& op_type);
int CardFeatureIndex(const std::string& op_type);

/// \brief Encoder bound to one spec + engine (for table statistics).
class PlanEncoder {
 public:
  PlanEncoder(const rewrite::PlanBuilder& builder, const sql::Engine* engine);

  /// Encode all candidate plans for the current signal environment
  /// (initial-rendering vectors). Cardinality features are min-max
  /// normalized across the set.
  std::vector<std::vector<double>> EncodePlans(
      const std::vector<rewrite::ExecutionPlan>& plans,
      const expr::SignalResolver& signals) const;

  /// Episode-aware encoding (§5.4): only operators that re-evaluate when the
  /// given signals update contribute to the vector. An empty `updated` set
  /// means initial rendering (everything contributes).
  std::vector<std::vector<double>> EncodeEpisode(
      const std::vector<rewrite::ExecutionPlan>& plans,
      const expr::SignalResolver& signals,
      const std::set<std::string>& updated) const;

 private:
  const rewrite::PlanBuilder& builder_;
  const sql::Engine* engine_;
};

/// Min-max normalize the cardinality features in-place across `vectors`.
void NormalizeCardinalityFeatures(std::vector<std::vector<double>>* vectors);

}  // namespace plan
}  // namespace vegaplus

#endif  // VEGAPLUS_PLAN_ENCODER_H_
