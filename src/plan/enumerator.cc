#include "plan/enumerator.h"

#include <algorithm>

namespace vegaplus {
namespace plan {

namespace {

// Recursively assign splits entry by entry, pruning infeasible branches via
// PlanBuilder::Validate-equivalent local checks (parent link + bounds).
void Recurse(const rewrite::PlanBuilder& builder, size_t entry,
             rewrite::ExecutionPlan* current,
             const std::function<void(const rewrite::ExecutionPlan&)>& emit) {
  const spec::VegaSpec& spec = builder.spec();
  if (entry == spec.data.size()) {
    emit(*current);
    return;
  }
  const spec::DataSpec& d = spec.data[entry];
  // Parent feasibility for split > 0.
  bool parent_allows = true;
  if (!d.source.empty()) {
    for (size_t j = 0; j < entry; ++j) {
      if (spec.data[j].name == d.source) {
        bool fully = current->splits[j] == static_cast<int>(spec.data[j].transforms.size());
        bool reserved = builder.reserved().count(d.source) > 0;
        parent_allows = fully && !reserved;
        break;
      }
    }
  }
  int max_split = parent_allows ? builder.max_splits()[entry] : 0;
  for (int s = 0; s <= max_split; ++s) {
    current->splits[entry] = s;
    Recurse(builder, entry + 1, current, emit);
  }
  current->splits[entry] = 0;
}

}  // namespace

EnumerationResult EnumeratePlans(const rewrite::PlanBuilder& builder, size_t max_plans,
                                 uint64_t seed) {
  EnumerationResult result;
  rewrite::ExecutionPlan current;
  current.splits.assign(builder.spec().data.size(), 0);

  // Pass 1: count the space.
  size_t count = 0;
  Recurse(builder, 0, &current, [&count](const rewrite::ExecutionPlan&) { ++count; });
  result.total_space = count;

  if (count <= max_plans) {
    result.plans.reserve(count);
    Recurse(builder, 0, &current, [&result](const rewrite::ExecutionPlan& p) {
      result.plans.push_back(p);
    });
    return result;
  }

  // Reservoir-sample max_plans of the space deterministically.
  result.truncated = true;
  Rng rng(seed);
  size_t seen = 0;
  result.plans.reserve(max_plans);
  Recurse(builder, 0, &current,
          [&](const rewrite::ExecutionPlan& p) {
            if (result.plans.size() < max_plans) {
              result.plans.push_back(p);
            } else {
              size_t j = static_cast<size_t>(rng.Next() % (seen + 1));
              if (j < max_plans) result.plans[j] = p;
            }
            ++seen;
          });
  // Always keep the two anchor plans in the sample.
  auto ensure = [&](const rewrite::ExecutionPlan& p) {
    for (const auto& existing : result.plans) {
      if (existing == p) return;
    }
    result.plans[rng.Index(result.plans.size())] = p;
  };
  ensure(builder.AllClientPlan());
  ensure(builder.FullPushdownPlan());
  return result;
}

EnumerationResult EnumeratePlansPruned(const rewrite::PlanBuilder& builder,
                                       PruningStrategy strategy,
                                       const sql::Engine* engine,
                                       double cardinality_factor) {
  if (strategy == PruningStrategy::kBoundary) {
    // Per entry, keep only the boundary splits {0, max-feasible}; enumerate
    // the (much smaller) product and keep feasible combinations.
    EnumerationResult full = EnumeratePlans(builder);
    EnumerationResult out;
    out.total_space = full.total_space;
    const auto& spec = builder.spec();
    for (const auto& p : full.plans) {
      bool boundary = true;
      for (size_t e = 0; e < spec.data.size(); ++e) {
        if (p.splits[e] != 0 && p.splits[e] != builder.max_splits()[e]) {
          boundary = false;
          break;
        }
      }
      if (boundary) out.plans.push_back(p);
    }
    out.truncated = out.plans.size() < full.plans.size();
    return out;
  }

  // kCardinalityThreshold: estimate each plan's total fetched cardinality
  // from table statistics and drop anything beyond factor x the minimum.
  EnumerationResult full = EnumeratePlans(builder);
  if (engine == nullptr || full.plans.size() < 2) return full;
  const auto& spec = builder.spec();
  // Per-entry cardinality after each split (selectivity-free upper bound:
  // root rows for raw / prefix outputs estimated via entry chain length).
  std::vector<double> base_rows(spec.data.size(), 0);
  for (size_t e = 0; e < spec.data.size(); ++e) {
    const spec::DataSpec& d = spec.data[e];
    if (!d.source.empty()) {
      for (size_t j = 0; j < e; ++j) {
        if (spec.data[j].name == d.source) base_rows[e] = base_rows[j];
      }
    } else {
      const data::TableStats* stats =
          engine->catalog().GetStats(!d.table.empty() ? d.table : d.name);
      base_rows[e] = stats != nullptr ? static_cast<double>(stats->num_rows) : 0;
    }
  }
  std::vector<std::vector<size_t>> children(spec.data.size());
  for (size_t e = 0; e < spec.data.size(); ++e) {
    if (spec.data[e].source.empty()) continue;
    for (size_t j = 0; j < e; ++j) {
      if (spec.data[j].name == spec.data[e].source) children[j].push_back(e);
    }
  }
  auto plan_cardinality = [&](const rewrite::ExecutionPlan& p) {
    double total = 0;
    for (size_t e = 0; e < spec.data.size(); ++e) {
      const int total_ops = static_cast<int>(spec.data[e].transforms.size());
      // Aggregates crush cardinality; approximate: any aggregate inside the
      // prefix caps the fetch at 1000 rows.
      bool aggregated = false;
      for (int t = 0; t < p.splits[e]; ++t) {
        if (spec.data[e].transforms[static_cast<size_t>(t)].type == "aggregate") {
          aggregated = true;
        }
      }
      // Mirror PlanBuilder's fetch consolidation.
      bool child_needs_client = false;
      for (size_t c : children[e]) {
        if (p.splits[c] == 0) child_needs_client = true;
      }
      bool fetches = builder.reserved().count(spec.data[e].name) > 0 ||
                     p.splits[e] < total_ops || child_needs_client ||
                     children[e].empty();
      if (fetches) total += aggregated ? std::min(base_rows[e], 1000.0) : base_rows[e];
    }
    return total;
  };
  double best = plan_cardinality(full.plans[0]);
  std::vector<double> cards(full.plans.size());
  for (size_t i = 0; i < full.plans.size(); ++i) {
    cards[i] = plan_cardinality(full.plans[i]);
    best = std::min(best, cards[i]);
  }
  EnumerationResult out;
  out.total_space = full.total_space;
  for (size_t i = 0; i < full.plans.size(); ++i) {
    if (cards[i] <= best * cardinality_factor) out.plans.push_back(full.plans[i]);
  }
  if (out.plans.empty()) out.plans.push_back(builder.FullPushdownPlan());
  out.truncated = out.plans.size() < full.plans.size();
  return out;
}

}  // namespace plan
}  // namespace vegaplus
