#include "plan/encoder.h"

#include <algorithm>

#include "spec/transform_factory.h"
#include "sql/explain.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace plan {

namespace {

// Per-entry static structure used by the encoder.
struct EntryInfo {
  int parent = -1;
  std::vector<std::string> op_types;
  std::vector<std::vector<std::string>> op_deps;   // signal reads per op
  std::vector<std::string> extent_outputs;         // "" unless extent op
  std::vector<expr::NodePtr> filter_predicates;    // null unless filter op
  std::vector<transforms::BinOp::Params> bin_params;  // valid when type==bin
  std::vector<std::vector<transforms::FieldRef>> groupbys;  // when aggregate
  std::string root_table;
};

std::vector<EntryInfo> BuildEntryInfos(const spec::VegaSpec& spec) {
  std::vector<EntryInfo> infos(spec.data.size());
  for (size_t i = 0; i < spec.data.size(); ++i) {
    const spec::DataSpec& d = spec.data[i];
    EntryInfo& info = infos[i];
    info.root_table = !d.table.empty() ? d.table : d.name;
    if (!d.source.empty()) {
      for (size_t j = 0; j < i; ++j) {
        if (spec.data[j].name == d.source) info.parent = static_cast<int>(j);
      }
    }
    for (const auto& ts : d.transforms) {
      info.op_types.push_back(ts.type);
      auto built = spec::BuildTransformOp(ts);
      if (built.ok()) {
        info.op_deps.push_back((*built)->signal_deps());
        auto* extent = dynamic_cast<transforms::ExtentOp*>(built->get());
        info.extent_outputs.push_back(extent != nullptr ? extent->output_signal() : "");
        auto* filter = dynamic_cast<transforms::FilterOp*>(built->get());
        info.filter_predicates.push_back(filter != nullptr ? filter->predicate()
                                                           : nullptr);
        auto* bin = dynamic_cast<transforms::BinOp*>(built->get());
        info.bin_params.push_back(bin != nullptr ? bin->params()
                                                 : transforms::BinOp::Params());
        auto* agg = dynamic_cast<transforms::AggregateOp*>(built->get());
        info.groupbys.push_back(agg != nullptr ? agg->params().groupby
                                               : std::vector<transforms::FieldRef>());
      } else {
        info.op_deps.emplace_back();
        info.extent_outputs.emplace_back();
        info.filter_predicates.emplace_back(nullptr);
        info.bin_params.emplace_back();
        info.groupbys.emplace_back();
      }
    }
  }
  return infos;
}

// Which operators re-evaluate when `updated` signals change? Fixpoint over
// signal-producing extents and data-edge propagation.
std::vector<std::vector<bool>> ComputeReevaluation(
    const std::vector<EntryInfo>& infos, const std::set<std::string>& updated_in) {
  std::vector<std::vector<bool>> reeval(infos.size());
  for (size_t e = 0; e < infos.size(); ++e) {
    reeval[e].assign(infos[e].op_types.size(), false);
  }
  std::set<std::string> updated = updated_in;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t e = 0; e < infos.size(); ++e) {
      const EntryInfo& info = infos[e];
      bool upstream = false;
      if (info.parent >= 0) {
        const auto& parent_reeval = reeval[static_cast<size_t>(info.parent)];
        upstream = std::any_of(parent_reeval.begin(), parent_reeval.end(),
                               [](bool b) { return b; });
      }
      for (size_t t = 0; t < info.op_types.size(); ++t) {
        bool dirty = upstream || reeval[e][t];
        if (!dirty) {
          for (const std::string& dep : info.op_deps[t]) {
            if (updated.count(dep) > 0) {
              dirty = true;
              break;
            }
          }
        }
        if (dirty && !reeval[e][t]) {
          reeval[e][t] = true;
          changed = true;
        }
        if (reeval[e][t]) {
          upstream = true;
          if (!info.extent_outputs[t].empty() &&
              updated.insert(info.extent_outputs[t]).second) {
            changed = true;
          }
        }
      }
    }
  }
  return reeval;
}

double ResolveMaxbins(const transforms::BinOp::Params& p,
                      const expr::SignalResolver& signals) {
  if (!p.maxbins_signal.empty()) {
    expr::EvalValue v;
    if (signals.Lookup(p.maxbins_signal, &v) && !v.is_array() &&
        v.scalar().is_numeric()) {
      return std::max(1.0, v.scalar().AsDouble());
    }
  }
  return std::max(1, p.maxbins);
}

}  // namespace

const std::vector<std::string>& EncodedOpTypes() {
  static const std::vector<std::string>* kTypes = new std::vector<std::string>{
      "filter", "extent", "bin",      "aggregate", "collect",   "project",
      "stack",  "timeunit", "formula", "vdt",       "vdt_signal"};
  return *kTypes;
}

std::vector<std::string> FeatureNames() {
  std::vector<std::string> names;
  for (const std::string& t : EncodedOpTypes()) names.push_back("count_" + t);
  for (const std::string& t : EncodedOpTypes()) names.push_back("card_" + t);
  return names;
}

int CountFeatureIndex(const std::string& op_type) {
  const auto& types = EncodedOpTypes();
  for (size_t i = 0; i < types.size(); ++i) {
    if (types[i] == op_type) return static_cast<int>(i);
  }
  return -1;
}

int CardFeatureIndex(const std::string& op_type) {
  int idx = CountFeatureIndex(op_type);
  return idx < 0 ? -1 : idx + static_cast<int>(EncodedOpTypes().size());
}

PlanEncoder::PlanEncoder(const rewrite::PlanBuilder& builder, const sql::Engine* engine)
    : builder_(builder), engine_(engine) {}

std::vector<std::vector<double>> PlanEncoder::EncodePlans(
    const std::vector<rewrite::ExecutionPlan>& plans,
    const expr::SignalResolver& signals) const {
  return EncodeEpisode(plans, signals, {});
}

std::vector<std::vector<double>> PlanEncoder::EncodeEpisode(
    const std::vector<rewrite::ExecutionPlan>& plans,
    const expr::SignalResolver& signals, const std::set<std::string>& updated) const {
  const spec::VegaSpec& spec = builder_.spec();
  std::vector<EntryInfo> infos = BuildEntryInfos(spec);

  const bool initial = updated.empty();
  std::vector<std::vector<bool>> reeval;
  if (initial) {
    reeval.resize(infos.size());
    for (size_t e = 0; e < infos.size(); ++e) {
      reeval[e].assign(infos[e].op_types.size(), true);
    }
  } else {
    reeval = ComputeReevaluation(infos, updated);
  }

  // Estimated cardinality after each transform of each entry
  // (placement-independent).
  std::vector<std::vector<double>> card_after(infos.size());
  std::vector<double> entry_base(infos.size(), 0);
  std::vector<double> entry_final(infos.size(), 0);
  for (size_t e = 0; e < infos.size(); ++e) {
    const EntryInfo& info = infos[e];
    const data::TableStats* stats =
        info.parent < 0 ? engine_->catalog().GetStats(info.root_table) : nullptr;
    double rows = info.parent >= 0 ? entry_final[static_cast<size_t>(info.parent)]
                                   : (stats != nullptr
                                          ? static_cast<double>(stats->num_rows)
                                          : 0.0);
    entry_base[e] = rows;
    // Root stats follow the entry chain for selectivity/grouping estimates.
    const data::TableStats* root_stats = stats;
    for (size_t j = e; infos[j].parent >= 0;) {
      j = static_cast<size_t>(infos[j].parent);
      root_stats = engine_->catalog().GetStats(infos[j].root_table);
      if (infos[j].parent < 0) break;
    }
    card_after[e].resize(info.op_types.size());
    for (size_t t = 0; t < info.op_types.size(); ++t) {
      const std::string& type = info.op_types[t];
      if (type == "filter" && info.filter_predicates[t]) {
        rows *= sql::EstimateSelectivity(info.filter_predicates[t], root_stats);
      } else if (type == "aggregate") {
        double groups = 1;
        for (const auto& g : info.groupbys[t]) {
          double d = 20;
          if (!g.is_signal() && root_stats != nullptr) {
            const data::ColumnStats* cs = root_stats->Find(g.field);
            if (cs != nullptr && cs->distinct_is_exact) {
              d = static_cast<double>(std::max<size_t>(cs->distinct_count, 1));
            } else if (g.field == "bin0" || g.field == "bin1") {
              // Find the nearest preceding bin op for its maxbins.
              for (size_t b = t; b-- > 0;) {
                if (info.op_types[b] == "bin") {
                  d = ResolveMaxbins(info.bin_params[b], signals);
                  break;
                }
              }
            } else if (g.field == "unit0" || g.field == "unit1") {
              d = 36;  // months/weeks-scale buckets
            }
          }
          groups *= d;
        }
        rows = std::min(rows, groups);
      }
      // bin/collect/project/stack/timeunit/formula/extent: cardinality
      // preserved.
      card_after[e][t] = rows;
    }
    entry_final[e] = rows;
  }

  // Fetch-needed per entry under each plan requires children splits.
  std::vector<std::vector<int>> children(spec.data.size());
  for (size_t e = 0; e < infos.size(); ++e) {
    if (infos[e].parent >= 0) children[static_cast<size_t>(infos[e].parent)].push_back(
        static_cast<int>(e));
  }

  const size_t num_types = EncodedOpTypes().size();
  std::vector<std::vector<double>> vectors;
  vectors.reserve(plans.size());
  for (const auto& p : plans) {
    std::vector<double> v(2 * num_types, 0.0);
    auto bump = [&v](const std::string& type, double card) {
      int ci = CountFeatureIndex(type);
      if (ci < 0) return;
      v[static_cast<size_t>(ci)] += 1;
      v[static_cast<size_t>(CardFeatureIndex(type))] += card;
    };
    for (size_t e = 0; e < infos.size(); ++e) {
      const EntryInfo& info = infos[e];
      const int split = p.splits[e];
      const int total = static_cast<int>(info.op_types.size());
      // Does the prefix (incl. ancestor chain) re-evaluate this episode?
      auto chain_reevals = [&](size_t entry, int upto) {
        // ancestors fully included
        for (size_t a = entry; infos[a].parent >= 0;) {
          a = static_cast<size_t>(infos[a].parent);
          for (bool b : reeval[a]) {
            if (b) return true;
          }
        }
        for (int t = 0; t < upto; ++t) {
          if (reeval[entry][static_cast<size_t>(t)]) return true;
        }
        return false;
      };

      bool has_client_ops = split < total;
      bool child_needs_client = false;
      for (int c : children[e]) {
        if (p.splits[static_cast<size_t>(c)] == 0) child_needs_client = true;
      }
      bool fetch_needed = builder_.reserved().count(spec.data[e].name) > 0 ||
                          has_client_ops || child_needs_client || children[e].empty();

      // Signal VDTs for extent ops in the prefix.
      for (int t = 0; t < split; ++t) {
        if (!info.extent_outputs[static_cast<size_t>(t)].empty() &&
            (initial || chain_reevals(e, t + 1))) {
          bump("vdt_signal", 1.0);
        }
      }
      // The data VDT.
      bool vdt_present = fetch_needed && (split > 0 || info.parent < 0);
      if (vdt_present && (initial || chain_reevals(e, split))) {
        double card = split > 0 ? card_after[e][static_cast<size_t>(split - 1)]
                                : entry_base[e];
        bump("vdt", card);
      }
      // Client operators.
      for (int t = split; t < total; ++t) {
        if (reeval[e][static_cast<size_t>(t)]) {
          bump(info.op_types[static_cast<size_t>(t)],
               card_after[e][static_cast<size_t>(t)]);
        }
      }
    }
    vectors.push_back(std::move(v));
  }
  NormalizeCardinalityFeatures(&vectors);
  return vectors;
}

void NormalizeCardinalityFeatures(std::vector<std::vector<double>>* vectors) {
  if (vectors->empty()) return;
  const size_t num_types = EncodedOpTypes().size();
  for (size_t f = num_types; f < 2 * num_types; ++f) {
    double lo = (*vectors)[0][f];
    double hi = lo;
    for (const auto& v : *vectors) {
      lo = std::min(lo, v[f]);
      hi = std::max(hi, v[f]);
    }
    double span = hi - lo;
    for (auto& v : *vectors) {
      v[f] = span > 0 ? (v[f] - lo) / span : 0.0;
    }
  }
}

}  // namespace plan
}  // namespace vegaplus
