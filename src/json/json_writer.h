// JSON serialization (compact and pretty-printed).
#ifndef VEGAPLUS_JSON_JSON_WRITER_H_
#define VEGAPLUS_JSON_JSON_WRITER_H_

#include <string>

#include "json/json_value.h"

namespace vegaplus {
namespace json {

/// Compact single-line serialization.
std::string Write(const Value& v);

/// Indented serialization (2-space indent).
std::string WritePretty(const Value& v);

/// Escape `s` per JSON string rules and wrap in quotes.
std::string QuoteString(const std::string& s);

}  // namespace json
}  // namespace vegaplus

#endif  // VEGAPLUS_JSON_JSON_WRITER_H_
