#include "json/json_writer.h"

#include <cmath>

#include "common/str_util.h"

namespace vegaplus {
namespace json {

namespace {

void WriteImpl(const Value& v, std::string* out, int indent, int depth) {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (v.type()) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(v.AsBool() ? "true" : "false");
      break;
    case Type::kNumber:
      out->append(FormatDouble(v.AsDouble()));
      break;
    case Type::kString:
      out->append(QuoteString(v.AsString()));
      break;
    case Type::kArray: {
      if (v.array().empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < v.array().size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        WriteImpl(v.array()[i], out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (v.members().empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        out->append(QuoteString(key));
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        WriteImpl(member, out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string QuoteString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.append(StrFormat("\\u%04x", c));
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Write(const Value& v) {
  std::string out;
  WriteImpl(v, &out, /*indent=*/-1, /*depth=*/0);
  return out;
}

std::string WritePretty(const Value& v) {
  std::string out;
  WriteImpl(v, &out, /*indent=*/2, /*depth=*/0);
  return out;
}

}  // namespace json
}  // namespace vegaplus
