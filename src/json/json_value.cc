#include "json/json_value.h"

#include "common/logging.h"

namespace vegaplus {
namespace json {

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Value::Find(const std::string& key) {
  for (auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::Set(const std::string& key, Value v) {
  VP_CHECK(is_object()) << "Set() on non-object JSON value";
  if (Value* existing = Find(key)) {
    *existing = std::move(v);
  } else {
    members_.emplace_back(key, std::move(v));
  }
}

Value& Value::operator[](const std::string& key) {
  VP_CHECK(is_object()) << "operator[] on non-object JSON value";
  if (Value* existing = Find(key)) return *existing;
  members_.emplace_back(key, Value());
  return members_.back().second;
}

std::string Value::GetString(const std::string& key, const std::string& dflt) const {
  const Value* v = Find(key);
  return (v && v->is_string()) ? v->AsString() : dflt;
}

double Value::GetDouble(const std::string& key, double dflt) const {
  const Value* v = Find(key);
  return (v && v->is_number()) ? v->AsDouble() : dflt;
}

int64_t Value::GetInt(const std::string& key, int64_t dflt) const {
  const Value* v = Find(key);
  return (v && v->is_number()) ? v->AsInt() : dflt;
}

bool Value::GetBool(const std::string& key, bool dflt) const {
  const Value* v = Find(key);
  return (v && v->is_bool()) ? v->AsBool() : dflt;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

}  // namespace json
}  // namespace vegaplus
