// Recursive-descent JSON parser (RFC 8259 subset: no surrogate-pair
// validation; \uXXXX escapes are decoded to UTF-8).
#ifndef VEGAPLUS_JSON_JSON_PARSER_H_
#define VEGAPLUS_JSON_JSON_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "json/json_value.h"

namespace vegaplus {
namespace json {

/// Parse a complete JSON document. Trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace vegaplus

#endif  // VEGAPLUS_JSON_JSON_PARSER_H_
