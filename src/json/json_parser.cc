#include "json/json_parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/str_util.h"

namespace vegaplus {
namespace json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    Value v;
    VP_RETURN_IF_ERROR(ParseValue(&v));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) {
    return Status::ParseError(StrFormat("JSON: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status ParseValue(Value* out) {
    if (Eof()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        std::string s;
        VP_RETURN_IF_ERROR(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(nullptr), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, Value v, Value* out) {
    if (text_.substr(pos_, lit.size()) != lit) return Error("invalid literal");
    pos_ += lit.size();
    *out = std::move(v);
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (!Eof() && (Peek() == '-' || Peek() == '+')) ++pos_;
    while (!Eof() && (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '.' ||
                      Peek() == 'e' || Peek() == 'E' || Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    double v = 0;
    if (pos_ == start || !ParseDouble(text_.substr(start, pos_ - start), &v)) {
      pos_ = start;
      return Error("invalid number");
    }
    *out = Value(v);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    // Caller guarantees Peek() == '"'.
    ++pos_;
    out->clear();
    while (true) {
      if (Eof()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (Eof()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8 (BMP only; surrogates passed raw).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseArray(Value* out) {
    ++pos_;  // consume '['
    *out = Value::MakeArray();
    SkipWhitespace();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      Value item;
      SkipWhitespace();
      VP_RETURN_IF_ERROR(ParseValue(&item));
      out->Append(std::move(item));
      SkipWhitespace();
      if (Eof()) return Error("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return Status::OK();
      if (c != ',') return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Value* out) {
    ++pos_;  // consume '{'
    *out = Value::MakeObject();
    SkipWhitespace();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (Eof() || Peek() != '"') return Error("expected string key in object");
      std::string key;
      VP_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (Eof() || text_[pos_++] != ':') return Error("expected ':' in object");
      SkipWhitespace();
      Value item;
      VP_RETURN_IF_ERROR(ParseValue(&item));
      out->Set(key, std::move(item));
      SkipWhitespace();
      if (Eof()) return Error("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return Status::OK();
      if (c != ',') return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).ParseDocument(); }

}  // namespace json
}  // namespace vegaplus
