// JSON document model. Vega specifications are JSON; this module also backs
// signal values and the JSON result encoding of the middleware.
//
// Objects preserve insertion order (like JavaScript) so that spec round-trips
// and printed output are deterministic.
#ifndef VEGAPLUS_JSON_JSON_VALUE_H_
#define VEGAPLUS_JSON_JSON_VALUE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vegaplus {
namespace json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// \brief A JSON value: null, bool, double, string, array, or object.
class Value {
 public:
  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}                       // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}                     // NOLINT
  Value(int i) : type_(Type::kNumber), num_(i) {}                     // NOLINT
  Value(int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}  // NOLINT
  Value(size_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}   // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}                  // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}             // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  static Value MakeArray() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value MakeArray(std::initializer_list<Value> items) {
    Value v = MakeArray();
    v.array_.assign(items);
    return v;
  }
  static Value MakeObject() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }

  // ---- Array access ----
  Array& array() { return array_; }
  const Array& array() const { return array_; }
  void Append(Value v) { array_.push_back(std::move(v)); }
  size_t size() const { return is_array() ? array_.size() : members_.size(); }
  const Value& operator[](size_t i) const { return array_[i]; }
  Value& operator[](size_t i) { return array_[i]; }

  // ---- Object access ----
  Object& members() { return members_; }
  const Object& members() const { return members_; }

  /// True if this object has member `key`.
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  /// Pointer to member value or nullptr. (No exceptions: callers branch.)
  const Value* Find(const std::string& key) const;
  Value* Find(const std::string& key);

  /// Set (replacing an existing member of the same name).
  void Set(const std::string& key, Value v);

  /// Member access; inserts null member if absent (object must be kObject).
  Value& operator[](const std::string& key);

  /// Lookup with defaults; never fail.
  std::string GetString(const std::string& key, const std::string& dflt = "") const;
  double GetDouble(const std::string& key, double dflt = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t dflt = 0) const;
  bool GetBool(const std::string& key, bool dflt = false) const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array array_;
  Object members_;
};

}  // namespace json
}  // namespace vegaplus

#endif  // VEGAPLUS_JSON_JSON_VALUE_H_
