#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace vegaplus {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; use strtod on a
  // NUL-terminated copy.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  // %.17g round-trips but is ugly; try shorter representations first.
  for (int prec = 6; prec <= 17; ++prec) {
    std::string s = StrFormat("%.*g", prec, v);
    double parsed = 0;
    if (ParseDouble(s, &parsed) && parsed == v) return s;
  }
  return StrFormat("%.17g", v);
}

}  // namespace vegaplus
