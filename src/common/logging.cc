#include "common/logging.h"

#include <atomic>
#include <cstdlib>

namespace vegaplus {
namespace internal {

namespace {
std::atomic<int> g_level{[] {
  if (const char* env = std::getenv("VP_LOG_LEVEL")) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}()};
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace internal
}  // namespace vegaplus
