// Deterministic, fast PRNG (xoshiro256**) used everywhere randomness is
// needed: dataset generation, workload simulation, ML training, and the
// random plan comparator. std::mt19937 is avoided so that streams are
// identical across platforms and standard libraries.
#ifndef VEGAPLUS_COMMON_RANDOM_H_
#define VEGAPLUS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vegaplus {

/// \brief Seedable xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seed via SplitMix64 expansion (any seed, including 0, is fine).
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Bernoulli draw.
  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  /// Standard normal via Box-Muller (one value per call; simple, good enough).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed index in [0, n) with exponent s (skewed categories).
  int64_t Zipf(int64_t n, double s = 1.2);

  /// Random index pick from [0, n).
  size_t Index(size_t n) { return static_cast<size_t>(Next() % n); }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Next() % (i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace vegaplus

#endif  // VEGAPLUS_COMMON_RANDOM_H_
