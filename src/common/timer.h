// Wall-clock stopwatch. Note: benchmark *labels* in this repo come from the
// deterministic latency model (runtime/latency_model.h), not from this timer;
// the stopwatch is for reporting real harness runtimes only.
#ifndef VEGAPLUS_COMMON_TIMER_H_
#define VEGAPLUS_COMMON_TIMER_H_

#include <chrono>

namespace vegaplus {

class StopWatch {
 public:
  StopWatch() { Restart(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed milliseconds since construction/Restart().
  double ElapsedMillis() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vegaplus

#endif  // VEGAPLUS_COMMON_TIMER_H_
