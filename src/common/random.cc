#include "common/random.h"

#include <cmath>

namespace vegaplus {

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF over the (small) harmonic table would be exact but O(n);
  // rejection sampling keeps generation O(1) per draw for large n.
  // Devroye's method for Zipf.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    double u = NextDouble();
    double v = NextDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-9)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<int64_t>(x) - 1;
    }
  }
}

}  // namespace vegaplus
