// Morsel-driven parallel execution primitives (HyPer-style): the shared
// process-wide executor that the SQL executor and the dataflow transforms
// use to run filter / projection / aggregation work morsel-at-a-time across
// all cores.
//
// Design rules, in order of importance:
//
//  1. *No deadlocks with the middleware's DBMS worker pool.* A DBMS worker
//     (runtime::WorkerPool thread) that reaches ParallelFor while the morsel
//     pool is saturated must still make progress, so the calling thread
//     always participates in its own work: helpers are best-effort
//     acceleration, never a dependency. The two pools never submit work to
//     each other, so there is no cycle to deadlock on.
//  2. *Determinism.* Work is claimed from a shared atomic counter, but
//     morsel boundaries are a pure function of the input size and the
//     configured morsel size — never of the thread count — so callers can
//     merge per-morsel results in morsel order and get results that are
//     bit-identical run to run, at any parallelism, and with the kill
//     switch off.
//  3. *Kill switch.* SetMorselParallelEnabled(false) routes every
//     ParallelFor through the inline sequential path (same chunking, same
//     merge order) for debugging and differential testing.
#ifndef VEGAPLUS_COMMON_PARALLEL_H_
#define VEGAPLUS_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/cancel.h"

namespace vegaplus {
namespace parallel {

/// Global kill switch (default on). With parallelism disabled, ParallelFor
/// runs tasks inline on the calling thread in index order.
///
/// The morsel knobs below are deprecated as a public configuration surface:
/// prefer runtime::EngineConfig (runtime/engine_config.h), which snapshots
/// and applies every process-wide switch coherently. These free functions
/// remain the storage owners.
bool MorselParallelEnabled();
void SetMorselParallelEnabled(bool enabled);

/// Number of threads (caller included) a ParallelFor may use. 0 (the
/// default) means std::thread::hardware_concurrency(). Benchmarks set this
/// to measure scaling at fixed thread counts.
size_t MorselParallelism();
void SetMorselParallelism(size_t threads);

/// Rows per morsel for table-shaped work (default 16384). Morsel boundaries
/// feed deterministic merges, so tests shrink this to exercise many-morsel
/// paths on small tables. Must be >= 1.
size_t MorselRows();
void SetMorselRows(size_t rows);

/// Run fn(0) .. fn(num_tasks - 1), possibly concurrently on the shared
/// morsel pool. The calling thread participates (it claims tasks from the
/// same queue), so this never blocks on pool capacity — if every pool
/// thread is busy, the caller simply runs all tasks itself. Returns after
/// every task has finished. Task index order across threads is unspecified;
/// use per-task slots and merge in index order for deterministic results.
/// If a task throws, the first exception is rethrown on the calling thread
/// after all tasks complete.
///
/// `cancel` (optional) is the cooperative-cancellation checkpoint between
/// morsels: once the token fires, indices claimed afterwards skip `fn`
/// entirely (their output slots stay unwritten) but still count toward
/// completion, so ParallelFor always returns promptly and waiters never
/// hang. Callers must poll the token after the call and discard the
/// (partially written) results if it fired — ParallelFor itself has no
/// error channel for cancellation.
void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn,
                 const common::CancelToken* cancel = nullptr);

/// One contiguous half-open range of rows/positions.
struct Range {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Split [0, n) into consecutive ranges of `chunk` (the last may be short).
/// n == 0 yields no ranges; chunk is clamped to >= 1.
std::vector<Range> SplitRanges(size_t n, size_t chunk);

/// Morsel decomposition of an n-row input at the configured MorselRows().
std::vector<Range> MorselRanges(size_t n);

/// Chunk size for partial-aggregate accumulation over `n` positions when
/// each chunk must hold `states_per_chunk` partial states (groups x
/// aggregates). Starts at MorselRows() and doubles until the total
/// partial-state footprint is bounded, so high-cardinality group-bys do not
/// multiply their hash state by the chunk count. Deterministic in
/// (n, states_per_chunk, MorselRows()) only — never the thread count — so
/// the parallel and sequential paths merge identically-shaped partials.
size_t AggChunkSize(size_t n, size_t states_per_chunk);

}  // namespace parallel
}  // namespace vegaplus

#endif  // VEGAPLUS_COMMON_PARALLEL_H_
