#include "common/cancel.h"

namespace vegaplus {
namespace common {

namespace {
std::atomic<bool> g_cooperative_cancel{true};
}  // namespace

bool CooperativeCancelEnabled() {
  return g_cooperative_cancel.load(std::memory_order_relaxed);
}

void SetCooperativeCancelEnabled(bool enabled) {
  g_cooperative_cancel.store(enabled, std::memory_order_relaxed);
}

}  // namespace common
}  // namespace vegaplus
