// Result<T>: value-or-Status, the companion to Status for functions that
// produce a value. Mirrors arrow::Result.
#ifndef VEGAPLUS_COMMON_RESULT_H_
#define VEGAPLUS_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vegaplus {

/// \brief Holds either a successfully produced T or the Status explaining
/// why it could not be produced.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error Status. Constructing from an OK status is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::RuntimeError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error (or OK if a value is present).
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Access the value; undefined if !ok().
  const T& ValueOrDie() const& { return *value_; }
  T& ValueOrDie() & { return *value_; }
  T ValueOrDie() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace vegaplus

#endif  // VEGAPLUS_COMMON_RESULT_H_
