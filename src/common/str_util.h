// Small string utilities shared by the parsers and printers.
#ifndef VEGAPLUS_COMMON_STR_UTIL_H_
#define VEGAPLUS_COMMON_STR_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace vegaplus {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII-case-insensitive equality (used by the SQL keyword matcher).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Strict numeric parses; return false on trailing garbage or empty input.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

/// Render a double the way JSON/Vega would (integral values without ".0",
/// otherwise shortest round-trip representation).
std::string FormatDouble(double v);

}  // namespace vegaplus

#endif  // VEGAPLUS_COMMON_STR_UTIL_H_
