#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>

namespace vegaplus {
namespace parallel {

namespace {

std::atomic<bool> g_morsel_enabled{true};
std::atomic<size_t> g_parallelism{0};     // 0 = hardware_concurrency
std::atomic<size_t> g_morsel_rows{16384};

/// Shared state of one ParallelFor call. Helpers hold it by shared_ptr, so a
/// helper that wakes up after the caller returned (all work already claimed)
/// touches only this block, never the caller's dead stack frame. The task
/// function itself is only invoked for claimed indices, and the caller does
/// not return until every claimed index has completed, so everything `fn`
/// captures by reference outlives every invocation.
struct ForState {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  const common::CancelToken* cancel = nullptr;
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;
  std::exception_ptr first_error;
};

/// Claim-and-run loop shared by the caller and every helper.
void RunWork(ForState& s) {
  size_t done_local = 0;
  std::exception_ptr error;
  for (size_t i = s.next.fetch_add(1, std::memory_order_relaxed); i < s.n;
       i = s.next.fetch_add(1, std::memory_order_relaxed)) {
    // Cancellation checkpoint: a fired token turns the remaining morsels
    // into no-ops, but claimed indices still count as completed so the
    // caller's done_cv wait always terminates. The caller observes the
    // fired token itself and discards the partial output.
    if (!common::Fired(s.cancel)) {
      try {
        (*s.fn)(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    ++done_local;
  }
  if (done_local == 0 && !error) return;
  std::lock_guard<std::mutex> lock(s.mu);
  s.completed += done_local;
  if (error && !s.first_error) s.first_error = error;
  if (s.completed == s.n) s.done_cv.notify_all();
}

/// The process-wide morsel pool. Threads are spawned lazily up to the
/// largest parallelism ever requested and parked on a condition variable
/// between bursts; the pool is joined at static destruction.
class MorselPool {
 public:
  static MorselPool& Instance() {
    static MorselPool pool;
    return pool;
  }

  /// Enqueue `count` helper shares of `state`. Best-effort: helpers
  /// accelerate the caller, which is already running the same claim loop.
  void SubmitHelpers(size_t count, std::shared_ptr<ForState> state) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      for (size_t i = 0; i < count; ++i) queue_.push_back(state);
      // Spawn lazily, capped at the largest helper count any single call
      // has asked for (one ParallelFor at full parallelism). Concurrent
      // callers share this fixed crew rather than growing it: every caller
      // runs its own claim loop regardless, so an unserved helper share
      // costs throughput fairness, never progress — while sizing threads to
      // queue depth would oversubscribe every core under concurrent load
      // and never retire the surplus.
      max_helpers_ = std::max(max_helpers_, count);
      try {
        while (threads_.size() < max_helpers_ &&
               threads_.size() < queue_.size() + busy_) {
          threads_.emplace_back([this] { WorkerLoop(); });
        }
      } catch (const std::system_error&) {
        // Thread exhaustion: helpers are best-effort, the callers still
        // complete their own work on whatever crew exists.
      }
    }
    cv_.notify_all();
  }

  ~MorselPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      queue_.clear();
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::shared_ptr<ForState> state;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_) return;
        state = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
      }
      RunWork(*state);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --busy_;
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ForState>> queue_;
  std::vector<std::thread> threads_;
  size_t busy_ = 0;
  size_t max_helpers_ = 0;
  bool stopping_ = false;
};

size_t EffectiveParallelism() {
  size_t p = g_parallelism.load(std::memory_order_relaxed);
  if (p == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    p = hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  return p;
}

}  // namespace

bool MorselParallelEnabled() {
  return g_morsel_enabled.load(std::memory_order_relaxed);
}
void SetMorselParallelEnabled(bool enabled) {
  g_morsel_enabled.store(enabled, std::memory_order_relaxed);
}

size_t MorselParallelism() { return EffectiveParallelism(); }
void SetMorselParallelism(size_t threads) {
  g_parallelism.store(threads, std::memory_order_relaxed);
}

size_t MorselRows() { return g_morsel_rows.load(std::memory_order_relaxed); }
void SetMorselRows(size_t rows) {
  g_morsel_rows.store(rows == 0 ? 1 : rows, std::memory_order_relaxed);
}

void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn,
                 const common::CancelToken* cancel) {
  if (num_tasks == 0) return;
  const size_t workers =
      MorselParallelEnabled() ? std::min(num_tasks, EffectiveParallelism()) : 1;
  if (workers <= 1) {
    for (size_t i = 0; i < num_tasks; ++i) {
      if (common::Fired(cancel)) return;
      fn(i);
    }
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = num_tasks;
  state->fn = &fn;
  state->cancel = cancel;
  MorselPool::Instance().SubmitHelpers(workers - 1, state);
  RunWork(*state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->completed == state->n; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

std::vector<Range> SplitRanges(size_t n, size_t chunk) {
  if (chunk == 0) chunk = 1;
  std::vector<Range> ranges;
  if (n == 0) return ranges;
  ranges.reserve((n + chunk - 1) / chunk);
  for (size_t begin = 0; begin < n; begin += chunk) {
    ranges.push_back(Range{begin, std::min(begin + chunk, n)});
  }
  return ranges;
}

std::vector<Range> MorselRanges(size_t n) { return SplitRanges(n, MorselRows()); }

size_t AggChunkSize(size_t n, size_t states_per_chunk) {
  // Cap the total partial-state footprint across chunks; ~1<<18 states keeps
  // the common low-cardinality case (dozens of chunks, few groups) fully
  // parallel while collapsing high-cardinality group-bys toward one chunk.
  constexpr size_t kMaxPartialStates = size_t{1} << 18;
  if (states_per_chunk == 0) states_per_chunk = 1;
  size_t chunk = MorselRows();
  while (chunk < n) {
    const size_t num_chunks = (n + chunk - 1) / chunk;
    if (num_chunks * states_per_chunk <= kMaxPartialStates) break;
    chunk *= 2;
  }
  return chunk;
}

}  // namespace parallel
}  // namespace vegaplus
