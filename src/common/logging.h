// Minimal glog-style logging and assertion macros.
#ifndef VEGAPLUS_COMMON_LOGGING_H_
#define VEGAPLUS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vegaplus {
namespace internal {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below are dropped. Defaults to kInfo,
/// override with environment variable VP_LOG_LEVEL (0-4).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarning: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kFatal: return "FATAL";
    }
    return "?";
  }
  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vegaplus

#define VP_LOG_DEBUG \
  ::vegaplus::internal::LogMessage(::vegaplus::internal::LogLevel::kDebug, __FILE__, __LINE__).stream()
#define VP_LOG_INFO \
  ::vegaplus::internal::LogMessage(::vegaplus::internal::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define VP_LOG_WARNING \
  ::vegaplus::internal::LogMessage(::vegaplus::internal::LogLevel::kWarning, __FILE__, __LINE__).stream()
#define VP_LOG_ERROR \
  ::vegaplus::internal::LogMessage(::vegaplus::internal::LogLevel::kError, __FILE__, __LINE__).stream()

/// Process-fatal invariant check (used for programmer errors, not data errors;
/// data errors go through Status).
#define VP_CHECK(cond)                                                              \
  if (!(cond))                                                                      \
  ::vegaplus::internal::LogMessage(::vegaplus::internal::LogLevel::kFatal, __FILE__, \
                                   __LINE__)                                        \
          .stream()                                                                 \
      << "Check failed: " #cond " "

#define VP_DCHECK(cond) VP_CHECK(cond)

#endif  // VEGAPLUS_COMMON_LOGGING_H_
