// Arrow/RocksDB-style Status: the error-handling currency of the library.
// Functions that can fail return Status (or Result<T>, see result.h) instead
// of throwing; exceptions never cross module boundaries.
#ifndef VEGAPLUS_COMMON_STATUS_H_
#define VEGAPLUS_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace vegaplus {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kTypeError = 3,
  kKeyError = 4,
  kOutOfRange = 5,
  kNotImplemented = 6,
  kIOError = 7,
  kRuntimeError = 8,
  kCancelled = 9,
  /// A request's deadline expired before a result could be produced. The
  /// underlying work may still complete (e.g. a later Await can observe it).
  kDeadlineExceeded = 10,
  /// The backend is (possibly transiently) unable to serve: injected or real
  /// DBMS outage, an open circuit breaker, or load shedding. Retryable.
  kUnavailable = 11,
};

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Copyable and cheap when OK (single pointer). Mirrors the API shape of
/// arrow::Status so code reads familiarly to database developers.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsRuntimeError() const { return code() == StatusCode::kRuntimeError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Human-readable "Code: message" string.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code())) + ": " + message();
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kKeyError: return "KeyError";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kRuntimeError: return "RuntimeError";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace vegaplus

/// Propagate a non-OK Status to the caller.
#define VP_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::vegaplus::Status _vp_status = (expr);           \
    if (!_vp_status.ok()) return _vp_status;          \
  } while (0)

#define VP_CONCAT_IMPL(x, y) x##y
#define VP_CONCAT(x, y) VP_CONCAT_IMPL(x, y)

/// Evaluate a Result<T>-returning expression; on error propagate the Status,
/// otherwise move the value into `lhs` (which may be a declaration).
#define VP_ASSIGN_OR_RETURN(lhs, expr)                         \
  auto VP_CONCAT(_vp_result_, __LINE__) = (expr);              \
  if (!VP_CONCAT(_vp_result_, __LINE__).ok())                  \
    return VP_CONCAT(_vp_result_, __LINE__).status();          \
  lhs = std::move(VP_CONCAT(_vp_result_, __LINE__)).ValueOrDie()

#endif  // VEGAPLUS_COMMON_STATUS_H_
