// Cooperative cancellation: a cheap, polled token threaded from the
// middleware down through SQL execution, morsel loops, storage page-in, and
// tile builds.
//
// Design rules:
//
//  1. *Polling only.* There is no interruption: a fired token makes the next
//     checkpoint (typically a morsel boundary, every MorselRows() rows) turn
//     the remaining work into no-ops and the enclosing call return
//     Status::Cancelled / Status::DeadlineExceeded. Holders of partial
//     results must discard them after a fired poll — morsels that were
//     skipped leave their output slots unwritten.
//  2. *Cheap when cold.* fired() is one relaxed atomic load when no deadline
//     is set, one steady_clock read otherwise. It is safe to poll per morsel
//     (16k rows), not per row.
//  3. *Kill switch.* SetCooperativeCancelEnabled(false) makes every token
//     report unfired regardless of state, restoring pre-cancellation
//     behavior bit-for-bit (runtime::EngineConfig::cooperative_cancel is the
//     configuration surface; these free functions are the storage owners,
//     following the parallel.h pattern).
//  4. *Hierarchy.* A token may have a parent: hedged attempts carry a child
//     token so the middleware can abandon one attempt without touching its
//     sibling, while a fired parent (ticket cancelled) stops both.
#ifndef VEGAPLUS_COMMON_CANCEL_H_
#define VEGAPLUS_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "common/status.h"

namespace vegaplus {
namespace common {

/// Process-wide kill switch (default on). With cooperative cancellation
/// disabled, CancelToken::fired() is constant false: every checkpoint
/// becomes a no-op and execution runs to completion exactly as before the
/// cancellation layer existed.
bool CooperativeCancelEnabled();
void SetCooperativeCancelEnabled(bool enabled);

class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// Child token: fires when explicitly cancelled, when its own deadline
  /// passes, or when `parent` fires. Used for hedged attempts.
  CancelToken(std::shared_ptr<const CancelToken> parent,
              std::optional<std::chrono::steady_clock::time_point> deadline)
      : parent_(std::move(parent)) {
    if (deadline.has_value()) {
      has_deadline_ = true;
      deadline_ = *deadline;
    }
  }

  /// Request cancellation. Idempotent, thread-safe, never blocks.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once the token has fired (explicit Cancel, expired deadline, or
  /// fired parent) and the kill switch is on. Checkpoints poll this.
  bool fired() const {
    if (!CooperativeCancelEnabled()) return false;
    return FiredIgnoringKillSwitch();
  }

  /// True when Cancel() was called explicitly (deadline expiry alone does
  /// not set this). Distinguishes kCancelled from kDeadlineExceeded.
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (parent_ != nullptr && parent_->cancel_requested());
  }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// The status a checkpoint should return once fired(): kCancelled when an
  /// explicit Cancel (own or parent's) fired it, else kDeadlineExceeded.
  Status status() const {
    if (cancel_requested()) {
      return Status::Cancelled("query cancelled at morsel checkpoint");
    }
    return Status::DeadlineExceeded("deadline expired at morsel checkpoint");
  }

 private:
  bool FiredIgnoringKillSwitch() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return true;
    }
    return parent_ != nullptr && parent_->FiredIgnoringKillSwitch();
  }

  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::shared_ptr<const CancelToken> parent_;
};

/// Per-query execution context handed from the middleware into the engine.
/// Today it carries only the cancellation token; it is the seam where future
/// per-query state (priority, memory budget, tracing) attaches without
/// another signature sweep.
struct QueryContext {
  std::shared_ptr<CancelToken> cancel;

  /// Borrowed pointer for the hot-path plumbing (ParallelFor, readers).
  /// Null when cancellation is not in play.
  const CancelToken* token() const { return cancel.get(); }
};

/// Poll helper: true when `cancel` is non-null and fired.
inline bool Fired(const CancelToken* cancel) {
  return cancel != nullptr && cancel->fired();
}

}  // namespace common
}  // namespace vegaplus

#endif  // VEGAPLUS_COMMON_CANCEL_H_
