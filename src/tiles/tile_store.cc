#include "tiles/tile_store.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>

#include "common/parallel.h"
#include "expr/ast.h"
#include "json/json_value.h"
#include "json/json_writer.h"
#include "rewrite/tile_shape.h"
#include "sql/engine.h"
#include "storage/reader.h"
#include "storage/table_shard.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace tiles {

namespace {

using data::Column;
using data::DataType;
using data::Table;
using data::TablePtr;
using data::Value;
using expr::BinAggSlots;
using expr::RegKind;
using expr::Vec;
using rewrite::TileShape;
using sql::AggOp;
using sql::SelectItem;
using sql::SelectStmt;

std::atomic<bool> g_tile_serving{true};

std::string TreeKey(const std::string& table, const std::string& column,
                    bool categorical) {
  std::string key = table;
  key.push_back('\0');
  key += column;
  key += categorical ? "#cat" : "#num";
  return key;
}

/// Mirror of the executor's AggResultType for the shapes tiles cover:
/// COUNT is int64, MIN/MAX keep the argument column's type, SUM/AVG widen
/// to float64. The Value cells appended below then coerce exactly like the
/// executor's AggState::Finish output does.
DataType TileAggType(const TileShape::Item& item, const data::Schema& schema) {
  switch (item.op) {
    case AggOp::kCount:
      return DataType::kInt64;
    case AggOp::kMin:
    case AggOp::kMax: {
      int idx = schema.FieldIndex(item.agg_column);
      if (idx >= 0) return schema.field(static_cast<size_t>(idx)).type;
      return DataType::kFloat64;
    }
    default:
      return DataType::kFloat64;
  }
}

/// Classification of one slot against the brush bounds.
enum class SlotCoverage { kIncluded, kExcluded, kPartial };

/// Stable filename stem for a tree key (keys embed '\0', so they cannot be
/// used as path components directly).
std::string Fnv1aHex(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

/// Slot-array footprint of a level: rows + first_row (int64 each) plus four
/// slot-sized arrays per measure (count int64, sum/min/max float64).
size_t LevelApproxBytes(size_t num_bins, size_t num_measures) {
  const size_t slots = num_bins + 1;
  return slots * 16 + num_measures * slots * 32;
}

SlotCoverage ClassifySlot(const TileShape& shape, double vmin, double vmax) {
  bool all = true;
  if (shape.has_lower) {
    const bool all_in = shape.lower_strict ? vmin > shape.lower
                                           : vmin >= shape.lower;
    const bool none_in = shape.lower_strict ? vmax <= shape.lower
                                            : vmax < shape.lower;
    if (none_in) return SlotCoverage::kExcluded;
    all = all && all_in;
  }
  if (shape.has_upper) {
    const bool all_in = shape.upper_strict ? vmax < shape.upper
                                           : vmax <= shape.upper;
    const bool none_in = shape.upper_strict ? vmin >= shape.upper
                                            : vmin > shape.upper;
    if (none_in) return SlotCoverage::kExcluded;
    all = all && all_in;
  }
  return all ? SlotCoverage::kIncluded : SlotCoverage::kPartial;
}

}  // namespace

bool TileServingEnabled() { return g_tile_serving.load(std::memory_order_relaxed); }
void SetTileServingEnabled(bool enabled) {
  g_tile_serving.store(enabled, std::memory_order_relaxed);
}

const expr::BinAggSlots* TileStore::Level::FindMeasure(
    const std::string& name) const {
  for (size_t i = 0; i < measure_names.size(); ++i) {
    if (measure_names[i] == name) return &measure_slots[i];
  }
  return nullptr;
}

TileStore::TileStore(const sql::Engine* engine, TileStoreOptions options)
    : engine_(engine), options_(options) {}

TileStoreStats TileStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TileStore::Invalidate(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = trees_.begin(); it != trees_.end();) {
    // Keys are "<table>\0<column>#kind".
    const std::string& key = it->first;
    if (key.size() > table_name.size() && key[table_name.size()] == '\0' &&
        key.compare(0, table_name.size(), table_name) == 0) {
      it = trees_.erase(it);
    } else {
      ++it;
    }
  }
}

bool TileStore::BuildLevel(const Table& table, const Vec& bin_values,
                           Level* level,
                           const common::CancelToken* cancel) const {
  const size_t n = table.num_rows();
  const size_t slots = level->num_bins + 1;  // + null slot

  // Assign every row to a slot. Chunks are MorselRows()-sized so the merge
  // order below matches the executor's partial-state discipline. A fired
  // token skips the remaining chunks; every post-ParallelFor checkpoint
  // returns false and BuildTree converts that into an aborted (uncached)
  // build.
  std::vector<int32_t> bin_of(n);
  std::vector<parallel::Range> chunks =
      parallel::SplitRanges(n, parallel::MorselRows());
  std::vector<char> chunk_ok(chunks.size(), 1);
  parallel::ParallelFor(
      chunks.size(),
      [&](size_t c) {
        chunk_ok[c] = expr::ComputeBinIndices(bin_values, level->start,
                                              level->step, level->num_bins,
                                              chunks[c], bin_of.data())
                          ? 1
                          : 0;
      },
      cancel);
  if (common::Fired(cancel)) return false;
  for (char ok : chunk_ok) {
    if (!ok) return false;  // out-of-range value: extent/binning mismatch
  }

  // COUNT(*) and first-seen order per slot, merged in chunk order.
  {
    std::vector<std::vector<int64_t>> chunk_rows(chunks.size());
    std::vector<std::vector<int64_t>> chunk_first(chunks.size());
    parallel::ParallelFor(
        chunks.size(),
        [&](size_t c) {
          chunk_rows[c].assign(slots, 0);
          chunk_first[c].assign(slots, -1);
          expr::AccumulateBinRows(bin_of.data(), chunks[c], &chunk_rows[c],
                                  &chunk_first[c]);
        },
        cancel);
    if (common::Fired(cancel)) return false;
    level->rows.assign(slots, 0);
    level->first_row.assign(slots, -1);
    for (size_t c = 0; c < chunks.size(); ++c) {
      for (size_t b = 0; b < slots; ++b) {
        level->rows[b] += chunk_rows[c][b];
        if (level->first_row[b] < 0) level->first_row[b] = chunk_first[c][b];
      }
    }
  }

  // Measure slots: every column the executor's typed aggregate path would
  // accumulate as doubles (numeric, bool, timestamp — ColumnVec widens them
  // all to kNum or kBool). String/unsupported columns are simply absent, so
  // queries aggregating them fall back.
  for (size_t col = 0; col < table.num_columns(); ++col) {
    Vec values = expr::ColumnVec(table.column(col));
    if (values.kind != RegKind::kNum && values.kind != RegKind::kBool) continue;
    std::vector<BinAggSlots> chunk_slots(chunks.size());
    parallel::ParallelFor(
        chunks.size(),
        [&](size_t c) {
          chunk_slots[c].Resize(slots);
          expr::AccumulateBinAggs(values, bin_of.data(), chunks[c],
                                  &chunk_slots[c]);
        },
        cancel);
    if (common::Fired(cancel)) return false;
    BinAggSlots merged;
    merged.Resize(slots);
    for (size_t c = 0; c < chunks.size(); ++c) {
      merged.MergeFrom(chunk_slots[c]);
    }
    level->measure_names.push_back(table.schema().field(col).name);
    level->measure_slots.push_back(std::move(merged));
  }
  return true;
}

std::shared_ptr<TileStore::Tree> TileStore::BuildTree(
    const TablePtr& table, const std::string& column, bool categorical,
    const common::CancelToken* cancel) const {
  auto tree = std::make_shared<Tree>();
  tree->source = table;
  tree->categorical = categorical;
  tree->unbuildable = true;  // cleared on success

  int col_idx = table->schema().FieldIndex(column);
  if (col_idx < 0 || table->num_rows() == 0) return tree;
  const Column& col = table->column(static_cast<size_t>(col_idx));

  if (categorical) {
    if (!col.dict_encoded()) return tree;  // flat strings: not covered
    tree->dict = col.dict_shared();
    const size_t n = table->num_rows();
    const size_t num_codes = tree->dict->values.size();
    // Codes are already bin indices; -1 (null) maps to the trailing slot.
    Vec values = expr::ColumnVec(col);
    Level level;
    level.num_bins = num_codes;
    const int32_t* codes = col.codes_data();
    std::vector<int32_t> bin_of(n);
    for (size_t i = 0; i < n; ++i) {
      if ((i & 16383u) == 0 && common::Fired(cancel)) return nullptr;
      bin_of[i] = codes[i] < 0 ? static_cast<int32_t>(num_codes) : codes[i];
    }
    const size_t slots = num_codes + 1;
    level.rows.assign(slots, 0);
    level.first_row.assign(slots, -1);
    expr::AccumulateBinRows(bin_of.data(), parallel::Range{0, n}, &level.rows,
                            &level.first_row);
    // Measures over the same slot assignment, chunked like the numeric path.
    std::vector<parallel::Range> chunks =
        parallel::SplitRanges(n, parallel::MorselRows());
    for (size_t c = 0; c < table->num_columns(); ++c) {
      Vec mv = expr::ColumnVec(table->column(c));
      if (mv.kind != RegKind::kNum && mv.kind != RegKind::kBool) continue;
      std::vector<BinAggSlots> chunk_slots(chunks.size());
      parallel::ParallelFor(
          chunks.size(),
          [&](size_t ci) {
            chunk_slots[ci].Resize(slots);
            expr::AccumulateBinAggs(mv, bin_of.data(), chunks[ci],
                                    &chunk_slots[ci]);
          },
          cancel);
      if (common::Fired(cancel)) return nullptr;  // aborted: never cached
      BinAggSlots merged;
      merged.Resize(slots);
      for (auto& cs : chunk_slots) merged.MergeFrom(cs);
      level.measure_names.push_back(table->schema().field(c).name);
      level.measure_slots.push_back(std::move(merged));
    }
    tree->levels.push_back(std::move(level));
    tree->unbuildable = false;
    return tree;
  }

  // Numeric tree: extent pass, then one level per distinct nice binning.
  Vec bin_values = expr::ColumnVec(col);
  if (bin_values.kind != RegKind::kNum && bin_values.kind != RegKind::kBool) {
    return tree;
  }
  double lo = 0, hi = 0;
  bool any = false;
  for (size_t i = 0; i < table->num_rows(); ++i) {
    if ((i & 16383u) == 0 && common::Fired(cancel)) return nullptr;
    if (!bin_values.ValidAt(i)) continue;
    const double v = bin_values.kind == RegKind::kBool
                         ? (bin_values.BitAt(i) ? 1.0 : 0.0)
                         : bin_values.NumAt(i);
    if (!std::isfinite(v)) return tree;  // inf/NaN column: not coverable
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
  }
  if (!any) return tree;

  for (size_t maxbins = 1; maxbins <= options_.max_maxbins; ++maxbins) {
    transforms::Binning b =
        transforms::ComputeBinning(lo, hi, static_cast<int>(maxbins));
    if (!(b.step > 0) || !std::isfinite(b.start)) continue;
    bool seen = false;
    for (const Level& l : tree->levels) {
      if (l.start == b.start && l.step == b.step) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const double k_max = std::floor((hi - b.start) / b.step);
    if (!(k_max >= 0) || k_max >= static_cast<double>(options_.max_level_bins)) {
      continue;  // too fine for the slot cap; queries at this zoom fall back
    }
    Level level;
    level.start = b.start;
    level.step = b.step;
    level.num_bins = static_cast<size_t>(k_max) + 1;
    // Guard against catastrophic absorption (start + k*step collapsing for
    // distinct k): the executor would merge such groups by value, tiles
    // would not — so refuse the level.
    bool monotone = true;
    double prev = level.start;
    for (size_t k = 1; k < level.num_bins && monotone; ++k) {
      const double v = level.start + static_cast<double>(k) * level.step;
      monotone = v > prev;
      prev = v;
    }
    if (!monotone) continue;
    const bool built = BuildLevel(*table, bin_values, &level, cancel);
    // Distinguish abort (fired token — the partial tree must not be cached)
    // from an unbuildable level (skip it, keep enumerating zooms).
    if (common::Fired(cancel)) return nullptr;
    if (!built) continue;
    tree->levels.push_back(std::move(level));
  }
  tree->unbuildable = tree->levels.empty();
  return tree;
}

std::pair<size_t, size_t> TileStore::SpillTree(const std::string& key,
                                               Tree* tree) const {
  size_t spilled = 0;
  size_t evicted = 0;
  const std::string stem = options_.spill_dir + "/" + Fnv1aHex(key);
  for (size_t i = 0; i < tree->levels.size(); ++i) {
    Level& level = tree->levels[i];
    const size_t slots = level.num_bins + 1;
    level.approx_bytes = LevelApproxBytes(level.num_bins,
                                          level.measure_slots.size());

    std::vector<data::Field> fields;
    std::vector<Column> columns;
    auto add_ints = [&](const std::string& name,
                        const std::vector<int64_t>& v) {
      Column c(DataType::kInt64);
      c.Reserve(v.size());
      for (int64_t x : v) c.AppendInt(x);
      fields.push_back({name, DataType::kInt64});
      columns.push_back(std::move(c));
    };
    auto add_doubles = [&](const std::string& name,
                           const std::vector<double>& v) {
      fields.push_back({name, DataType::kFloat64});
      columns.push_back(Column::FromDoubles(v, {}));
    };
    add_ints("rows", level.rows);
    add_ints("first_row", level.first_row);
    for (size_t m = 0; m < level.measure_slots.size(); ++m) {
      const BinAggSlots& s = level.measure_slots[m];
      const std::string p = "m" + std::to_string(m) + "_";
      add_ints(p + "count", s.count);
      add_doubles(p + "sum", s.sum);
      add_doubles(p + "min", s.min);
      add_doubles(p + "max", s.max);
    }
    Table slot_table(data::Schema(std::move(fields)), std::move(columns));
    if (slot_table.num_rows() != slots) continue;  // malformed level: keep hot

    json::Value meta = json::Value::MakeObject();
    meta.Set("start", level.start);
    meta.Set("step", level.step);
    meta.Set("num_bins", level.num_bins);
    json::Value names = json::Value::MakeArray();
    for (const std::string& n : level.measure_names) names.Append(n);
    meta.Set("measure_names", std::move(names));

    storage::WriteOptions opts;
    opts.kind = "TILE";
    opts.meta = json::Write(meta);
    const std::string path = stem + "-L" + std::to_string(i) + ".vps";
    if (!storage::TableShard::Write(path, slot_table, opts).ok()) continue;
    level.spill_path = path;
    ++spilled;
  }

  // Evict largest spilled levels until the resident slot arrays fit the
  // budget. Never evicts an unspilled level — there would be nothing to
  // hydrate from.
  if (options_.resident_level_bytes > 0) {
    size_t resident_total = 0;
    std::vector<size_t> order;
    for (size_t i = 0; i < tree->levels.size(); ++i) {
      resident_total += tree->levels[i].approx_bytes;
      if (!tree->levels[i].spill_path.empty()) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return tree->levels[a].approx_bytes > tree->levels[b].approx_bytes;
    });
    for (size_t i : order) {
      if (resident_total <= options_.resident_level_bytes) break;
      Level& level = tree->levels[i];
      resident_total -= level.approx_bytes;
      level.rows.clear();
      level.rows.shrink_to_fit();
      level.first_row.clear();
      level.first_row.shrink_to_fit();
      level.measure_slots.clear();
      level.measure_slots.shrink_to_fit();
      level.resident = false;
      ++evicted;
    }
  }
  return {spilled, evicted};
}

Result<TileStore::Level> TileStore::HydrateLevel(const Level& level) const {
  VP_ASSIGN_OR_RETURN(std::shared_ptr<storage::Reader> reader,
                      storage::Reader::Open(level.spill_path));
  VP_ASSIGN_OR_RETURN(TablePtr t, reader->ReadAll());
  const size_t slots = level.num_bins + 1;
  const size_t want_cols = 2 + 4 * level.measure_names.size();
  if (t->num_rows() != slots || t->num_columns() != want_cols) {
    return Status::IOError("tile level shard " + level.spill_path +
                           " does not match the resident skeleton");
  }
  auto ints = [&](size_t col, std::vector<int64_t>* out) -> Status {
    const Column& c = t->column(col);
    if (c.type() != DataType::kInt64) {
      return Status::IOError("tile level shard " + level.spill_path +
                             ": expected int64 at column " +
                             std::to_string(col));
    }
    out->assign(c.ints_data(), c.ints_data() + slots);
    return Status::OK();
  };
  auto doubles = [&](size_t col, std::vector<double>* out) -> Status {
    const Column& c = t->column(col);
    if (c.type() != DataType::kFloat64) {
      return Status::IOError("tile level shard " + level.spill_path +
                             ": expected float64 at column " +
                             std::to_string(col));
    }
    out->assign(c.doubles_data(), c.doubles_data() + slots);
    return Status::OK();
  };
  Level out = level;  // scalars, measure_names, spill_path carry over
  out.resident = true;
  VP_RETURN_IF_ERROR(ints(0, &out.rows));
  VP_RETURN_IF_ERROR(ints(1, &out.first_row));
  out.measure_slots.resize(level.measure_names.size());
  for (size_t m = 0; m < level.measure_names.size(); ++m) {
    BinAggSlots& s = out.measure_slots[m];
    const size_t base = 2 + 4 * m;
    VP_RETURN_IF_ERROR(ints(base + 0, &s.count));
    VP_RETURN_IF_ERROR(doubles(base + 1, &s.sum));
    VP_RETURN_IF_ERROR(doubles(base + 2, &s.min));
    VP_RETURN_IF_ERROR(doubles(base + 3, &s.max));
  }
  return out;
}

TileStore::TreePtr TileStore::GetOrBuildTree(const std::string& key,
                                             const std::string& table_name,
                                             const std::string& column,
                                             bool categorical,
                                             const TablePtr& table,
                                             const common::CancelToken* cancel) {
  (void)table_name;
  (void)column;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = trees_.find(key);
    if (it != trees_.end() && it->second->source == table) {
      return it->second;
    }
    if (!options_.build_on_miss) return nullptr;
    if (building_.count(key)) {
      ++stats_.build_conflicts;
      return nullptr;  // another thread is building: fall back, don't block
    }
    building_.insert(key);
  }
  std::shared_ptr<Tree> tree = BuildTree(table, column, categorical, cancel);
  if (tree == nullptr) {
    // Build aborted by a fired token. Release the single-flight slot and
    // cache nothing: a leader that dies mid-build must not poison the key —
    // the next requester (or a promoted follower) simply rebuilds.
    std::lock_guard<std::mutex> lock(mu_);
    building_.erase(key);
    ++stats_.builds_aborted;
    return nullptr;
  }
  std::pair<size_t, size_t> spill{0, 0};
  if (!options_.spill_dir.empty() && !tree->unbuildable) {
    spill = SpillTree(key, tree.get());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    trees_[key] = tree;
    building_.erase(key);
    ++stats_.builds;
    stats_.levels_spilled += spill.first;
    stats_.levels_evicted += spill.second;
  }
  return tree;
}

std::optional<TileAnswer> TileStore::TryAnswer(const SelectStmt& stmt,
                                               const common::CancelToken* cancel) {
  TileShape shape;
  if (!rewrite::MatchTileShape(stmt, &shape)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shape_misses;
    return std::nullopt;
  }
  auto coverage_miss = [this]() -> std::optional<TileAnswer> {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.coverage_misses;
    return std::nullopt;
  };

  auto table_r = engine_->catalog().GetTable(shape.table);
  if (!table_r.ok()) return coverage_miss();
  TablePtr table = *table_r;

  const std::string key =
      TreeKey(shape.table, shape.bin_column, shape.categorical);
  TreePtr tree =
      GetOrBuildTree(key, shape.table, shape.bin_column, shape.categorical,
                     table, cancel);
  if (tree == nullptr || tree->unbuildable) return coverage_miss();

  // ---- Level selection ----
  const Level* level = nullptr;
  if (shape.categorical) {
    level = &tree->levels[0];
  } else {
    for (const Level& l : tree->levels) {
      if (l.start == shape.start && l.step == shape.step) {
        level = &l;
        break;
      }
    }
  }
  if (level == nullptr) return coverage_miss();

  // Non-resident level: hydrate a transient copy from its shard file. The
  // copy is not re-cached — residency is governed solely at build time.
  std::optional<TileAnswer> answer;
  if (!level->resident) {
    Result<Level> hydrated = HydrateLevel(*level);
    if (!hydrated.ok()) return coverage_miss();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.level_hydrations;
    }
    answer = AnswerFromLevel(stmt, shape, *tree, *hydrated);
  } else {
    answer = AnswerFromLevel(stmt, shape, *tree, *level);
  }
  if (!answer) return coverage_miss();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
  }
  return answer;
}

std::optional<TileAnswer> TileStore::TryAnswerCoarser(const SelectStmt& stmt) {
  TileShape shape;
  if (!rewrite::MatchTileShape(stmt, &shape)) return std::nullopt;
  if (shape.categorical) return std::nullopt;  // single level: nothing coarser

  auto table_r = engine_->catalog().GetTable(shape.table);
  if (!table_r.ok()) return std::nullopt;
  TablePtr table = *table_r;

  // Lookup only — degraded mode must stay cheap, so never build here.
  TreePtr tree;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = trees_.find(TreeKey(shape.table, shape.bin_column, false));
    if (it == trees_.end() || it->second->source != table) return std::nullopt;
    tree = it->second;
  }
  if (tree->unbuildable) return std::nullopt;

  // Coarsest-acceptable-first would lose resolution needlessly; take the
  // finest level at or above the requested step that can answer.
  std::vector<const Level*> candidates;
  for (const Level& l : tree->levels) {
    if (l.step >= shape.step) candidates.push_back(&l);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Level* a, const Level* b) { return a->step < b->step; });
  for (const Level* level : candidates) {
    std::optional<TileAnswer> answer;
    if (!level->resident) {
      Result<Level> hydrated = HydrateLevel(*level);
      if (!hydrated.ok()) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.level_hydrations;
      }
      answer = AnswerFromLevel(stmt, shape, *tree, *hydrated);
    } else {
      answer = AnswerFromLevel(stmt, shape, *tree, *level);
    }
    if (answer) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.degraded_hits;
      return answer;
    }
  }
  return std::nullopt;
}

std::optional<TileAnswer> TileStore::AnswerFromLevel(const SelectStmt& stmt,
                                                     const TileShape& shape,
                                                     const Tree& tree,
                                                     const Level& level_ref)
    const {
  const Level* level = &level_ref;
  const TablePtr& table = tree.source;

  // ---- Aggregate-argument availability ----
  for (const TileShape::Item& item : shape.items) {
    if (item.kind != TileShape::Item::Kind::kAggregate || item.count_star) {
      continue;
    }
    if (level->FindMeasure(item.agg_column) == nullptr) return std::nullopt;
  }

  // ---- Slot inclusion ----
  const bool has_brush = shape.has_lower || shape.has_upper;
  const BinAggSlots* bin_measure = nullptr;
  if (has_brush) {
    bin_measure = level->FindMeasure(shape.bin_column);
    if (bin_measure == nullptr) return std::nullopt;
  }
  std::vector<size_t> included;
  included.reserve(level->num_bins + 1);
  for (size_t k = 0; k < level->num_bins; ++k) {
    if (level->rows[k] == 0) continue;
    if (has_brush) {
      switch (ClassifySlot(shape, bin_measure->min[k], bin_measure->max[k])) {
        case SlotCoverage::kExcluded:
          continue;
        case SlotCoverage::kPartial:
          return std::nullopt;  // straddling slot: exact answer needs rows
        case SlotCoverage::kIncluded:
          break;
      }
    }
    included.push_back(k);
  }
  // Null bin-column rows survive only an unfiltered scan (any brush
  // comparison on null is null => filtered out).
  if (!has_brush && level->rows[level->num_bins] > 0) {
    included.push_back(level->num_bins);
  }
  std::sort(included.begin(), included.end(), [&](size_t a, size_t b) {
    return level->first_row[a] < level->first_row[b];
  });

  // ---- Emit, replicating the executor's output exactly ----
  std::vector<data::Field> fields;
  fields.reserve(shape.items.size());
  for (size_t i = 0; i < shape.items.size(); ++i) {
    const TileShape::Item& item = shape.items[i];
    DataType t;
    switch (item.kind) {
      case TileShape::Item::Kind::kBin0:
      case TileShape::Item::Kind::kBin1:
        t = DataType::kFloat64;
        break;
      case TileShape::Item::Kind::kKey:
        t = DataType::kString;
        break;
      case TileShape::Item::Kind::kAggregate:
        t = TileAggType(item, table->schema());
        break;
    }
    fields.push_back({sql::DeriveItemName(stmt.items[i], i), t});
  }

  std::vector<Column> columns;
  columns.reserve(fields.size());
  for (size_t i = 0; i < shape.items.size(); ++i) {
    const TileShape::Item& item = shape.items[i];
    Column out(fields[i].type);
    out.Reserve(included.size());
    const BinAggSlots* m = item.kind == TileShape::Item::Kind::kAggregate &&
                                   !item.count_star
                               ? level->FindMeasure(item.agg_column)
                               : nullptr;
    for (size_t k : included) {
      const bool null_slot = k == level->num_bins;
      Value cell = Value::Null();
      switch (item.kind) {
        case TileShape::Item::Kind::kBin0:
          if (!null_slot) {
            cell = Value::Double(level->start +
                                 static_cast<double>(k) * level->step);
          }
          break;
        case TileShape::Item::Kind::kBin1:
          if (!null_slot) {
            cell = Value::Double(
                (level->start + static_cast<double>(k) * level->step) +
                level->step);
          }
          break;
        case TileShape::Item::Kind::kKey:
          if (!null_slot) cell = Value::String(tree.dict->values[k]);
          break;
        case TileShape::Item::Kind::kAggregate: {
          if (item.count_star) {
            cell = Value::Int(level->rows[k]);
            break;
          }
          const int64_t cnt = m->count[k];
          switch (item.op) {
            case AggOp::kCount:
              cell = Value::Int(cnt);
              break;
            case AggOp::kSum:
              if (cnt > 0) cell = Value::Double(m->sum[k]);
              break;
            case AggOp::kAvg:
              if (cnt > 0) {
                cell = Value::Double(m->sum[k] / static_cast<double>(cnt));
              }
              break;
            case AggOp::kMin:
              if (cnt > 0) cell = Value::Double(m->min[k]);
              break;
            case AggOp::kMax:
              if (cnt > 0) cell = Value::Double(m->max[k]);
              break;
            default:
              break;  // unreachable: matcher rejects other ops
          }
          break;
        }
      }
      out.Append(cell);
    }
    columns.push_back(std::move(out));
  }

  TileAnswer answer;
  answer.table = std::make_shared<Table>(data::Schema(std::move(fields)),
                                         std::move(columns));
  answer.bins_touched = included.size();
  return answer;
}

}  // namespace tiles
}  // namespace vegaplus
