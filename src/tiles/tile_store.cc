#include "tiles/tile_store.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "expr/ast.h"
#include "rewrite/tile_shape.h"
#include "sql/engine.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace tiles {

namespace {

using data::Column;
using data::DataType;
using data::Table;
using data::TablePtr;
using data::Value;
using expr::BinAggSlots;
using expr::RegKind;
using expr::Vec;
using rewrite::TileShape;
using sql::AggOp;
using sql::SelectItem;
using sql::SelectStmt;

std::atomic<bool> g_tile_serving{true};

std::string TreeKey(const std::string& table, const std::string& column,
                    bool categorical) {
  std::string key = table;
  key.push_back('\0');
  key += column;
  key += categorical ? "#cat" : "#num";
  return key;
}

/// Mirror of the executor's AggResultType for the shapes tiles cover:
/// COUNT is int64, MIN/MAX keep the argument column's type, SUM/AVG widen
/// to float64. The Value cells appended below then coerce exactly like the
/// executor's AggState::Finish output does.
DataType TileAggType(const TileShape::Item& item, const data::Schema& schema) {
  switch (item.op) {
    case AggOp::kCount:
      return DataType::kInt64;
    case AggOp::kMin:
    case AggOp::kMax: {
      int idx = schema.FieldIndex(item.agg_column);
      if (idx >= 0) return schema.field(static_cast<size_t>(idx)).type;
      return DataType::kFloat64;
    }
    default:
      return DataType::kFloat64;
  }
}

/// Classification of one slot against the brush bounds.
enum class SlotCoverage { kIncluded, kExcluded, kPartial };

SlotCoverage ClassifySlot(const TileShape& shape, double vmin, double vmax) {
  bool all = true;
  if (shape.has_lower) {
    const bool all_in = shape.lower_strict ? vmin > shape.lower
                                           : vmin >= shape.lower;
    const bool none_in = shape.lower_strict ? vmax <= shape.lower
                                            : vmax < shape.lower;
    if (none_in) return SlotCoverage::kExcluded;
    all = all && all_in;
  }
  if (shape.has_upper) {
    const bool all_in = shape.upper_strict ? vmax < shape.upper
                                           : vmax <= shape.upper;
    const bool none_in = shape.upper_strict ? vmin >= shape.upper
                                            : vmin > shape.upper;
    if (none_in) return SlotCoverage::kExcluded;
    all = all && all_in;
  }
  return all ? SlotCoverage::kIncluded : SlotCoverage::kPartial;
}

}  // namespace

bool TileServingEnabled() { return g_tile_serving.load(std::memory_order_relaxed); }
void SetTileServingEnabled(bool enabled) {
  g_tile_serving.store(enabled, std::memory_order_relaxed);
}

const expr::BinAggSlots* TileStore::Level::FindMeasure(
    const std::string& name) const {
  for (size_t i = 0; i < measure_names.size(); ++i) {
    if (measure_names[i] == name) return &measure_slots[i];
  }
  return nullptr;
}

TileStore::TileStore(const sql::Engine* engine, TileStoreOptions options)
    : engine_(engine), options_(options) {}

TileStoreStats TileStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TileStore::Invalidate(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = trees_.begin(); it != trees_.end();) {
    // Keys are "<table>\0<column>#kind".
    const std::string& key = it->first;
    if (key.size() > table_name.size() && key[table_name.size()] == '\0' &&
        key.compare(0, table_name.size(), table_name) == 0) {
      it = trees_.erase(it);
    } else {
      ++it;
    }
  }
}

bool TileStore::BuildLevel(const Table& table, const Vec& bin_values,
                           Level* level) const {
  const size_t n = table.num_rows();
  const size_t slots = level->num_bins + 1;  // + null slot

  // Assign every row to a slot. Chunks are MorselRows()-sized so the merge
  // order below matches the executor's partial-state discipline.
  std::vector<int32_t> bin_of(n);
  std::vector<parallel::Range> chunks =
      parallel::SplitRanges(n, parallel::MorselRows());
  std::vector<char> chunk_ok(chunks.size(), 1);
  parallel::ParallelFor(chunks.size(), [&](size_t c) {
    chunk_ok[c] = expr::ComputeBinIndices(bin_values, level->start, level->step,
                                          level->num_bins, chunks[c],
                                          bin_of.data())
                      ? 1
                      : 0;
  });
  for (char ok : chunk_ok) {
    if (!ok) return false;  // out-of-range value: extent/binning mismatch
  }

  // COUNT(*) and first-seen order per slot, merged in chunk order.
  {
    std::vector<std::vector<int64_t>> chunk_rows(chunks.size());
    std::vector<std::vector<int64_t>> chunk_first(chunks.size());
    parallel::ParallelFor(chunks.size(), [&](size_t c) {
      chunk_rows[c].assign(slots, 0);
      chunk_first[c].assign(slots, -1);
      expr::AccumulateBinRows(bin_of.data(), chunks[c], &chunk_rows[c],
                              &chunk_first[c]);
    });
    level->rows.assign(slots, 0);
    level->first_row.assign(slots, -1);
    for (size_t c = 0; c < chunks.size(); ++c) {
      for (size_t b = 0; b < slots; ++b) {
        level->rows[b] += chunk_rows[c][b];
        if (level->first_row[b] < 0) level->first_row[b] = chunk_first[c][b];
      }
    }
  }

  // Measure slots: every column the executor's typed aggregate path would
  // accumulate as doubles (numeric, bool, timestamp — ColumnVec widens them
  // all to kNum or kBool). String/unsupported columns are simply absent, so
  // queries aggregating them fall back.
  for (size_t col = 0; col < table.num_columns(); ++col) {
    Vec values = expr::ColumnVec(table.column(col));
    if (values.kind != RegKind::kNum && values.kind != RegKind::kBool) continue;
    std::vector<BinAggSlots> chunk_slots(chunks.size());
    parallel::ParallelFor(chunks.size(), [&](size_t c) {
      chunk_slots[c].Resize(slots);
      expr::AccumulateBinAggs(values, bin_of.data(), chunks[c],
                              &chunk_slots[c]);
    });
    BinAggSlots merged;
    merged.Resize(slots);
    for (size_t c = 0; c < chunks.size(); ++c) {
      merged.MergeFrom(chunk_slots[c]);
    }
    level->measure_names.push_back(table.schema().field(col).name);
    level->measure_slots.push_back(std::move(merged));
  }
  return true;
}

TileStore::TreePtr TileStore::BuildTree(const TablePtr& table,
                                        const std::string& column,
                                        bool categorical) const {
  auto tree = std::make_shared<Tree>();
  tree->source = table;
  tree->categorical = categorical;
  tree->unbuildable = true;  // cleared on success

  int col_idx = table->schema().FieldIndex(column);
  if (col_idx < 0 || table->num_rows() == 0) return tree;
  const Column& col = table->column(static_cast<size_t>(col_idx));

  if (categorical) {
    if (!col.dict_encoded()) return tree;  // flat strings: not covered
    tree->dict = col.dict_shared();
    const size_t n = table->num_rows();
    const size_t num_codes = tree->dict->values.size();
    // Codes are already bin indices; -1 (null) maps to the trailing slot.
    Vec values = expr::ColumnVec(col);
    Level level;
    level.num_bins = num_codes;
    const int32_t* codes = col.codes_data();
    std::vector<int32_t> bin_of(n);
    for (size_t i = 0; i < n; ++i) {
      bin_of[i] = codes[i] < 0 ? static_cast<int32_t>(num_codes) : codes[i];
    }
    const size_t slots = num_codes + 1;
    level.rows.assign(slots, 0);
    level.first_row.assign(slots, -1);
    expr::AccumulateBinRows(bin_of.data(), parallel::Range{0, n}, &level.rows,
                            &level.first_row);
    // Measures over the same slot assignment, chunked like the numeric path.
    std::vector<parallel::Range> chunks =
        parallel::SplitRanges(n, parallel::MorselRows());
    for (size_t c = 0; c < table->num_columns(); ++c) {
      Vec mv = expr::ColumnVec(table->column(c));
      if (mv.kind != RegKind::kNum && mv.kind != RegKind::kBool) continue;
      std::vector<BinAggSlots> chunk_slots(chunks.size());
      parallel::ParallelFor(chunks.size(), [&](size_t ci) {
        chunk_slots[ci].Resize(slots);
        expr::AccumulateBinAggs(mv, bin_of.data(), chunks[ci],
                                &chunk_slots[ci]);
      });
      BinAggSlots merged;
      merged.Resize(slots);
      for (auto& cs : chunk_slots) merged.MergeFrom(cs);
      level.measure_names.push_back(table->schema().field(c).name);
      level.measure_slots.push_back(std::move(merged));
    }
    tree->levels.push_back(std::move(level));
    tree->unbuildable = false;
    return tree;
  }

  // Numeric tree: extent pass, then one level per distinct nice binning.
  Vec bin_values = expr::ColumnVec(col);
  if (bin_values.kind != RegKind::kNum && bin_values.kind != RegKind::kBool) {
    return tree;
  }
  double lo = 0, hi = 0;
  bool any = false;
  for (size_t i = 0; i < table->num_rows(); ++i) {
    if (!bin_values.ValidAt(i)) continue;
    const double v = bin_values.kind == RegKind::kBool
                         ? (bin_values.BitAt(i) ? 1.0 : 0.0)
                         : bin_values.NumAt(i);
    if (!std::isfinite(v)) return tree;  // inf/NaN column: not coverable
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
  }
  if (!any) return tree;

  for (size_t maxbins = 1; maxbins <= options_.max_maxbins; ++maxbins) {
    transforms::Binning b =
        transforms::ComputeBinning(lo, hi, static_cast<int>(maxbins));
    if (!(b.step > 0) || !std::isfinite(b.start)) continue;
    bool seen = false;
    for (const Level& l : tree->levels) {
      if (l.start == b.start && l.step == b.step) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const double k_max = std::floor((hi - b.start) / b.step);
    if (!(k_max >= 0) || k_max >= static_cast<double>(options_.max_level_bins)) {
      continue;  // too fine for the slot cap; queries at this zoom fall back
    }
    Level level;
    level.start = b.start;
    level.step = b.step;
    level.num_bins = static_cast<size_t>(k_max) + 1;
    // Guard against catastrophic absorption (start + k*step collapsing for
    // distinct k): the executor would merge such groups by value, tiles
    // would not — so refuse the level.
    bool monotone = true;
    double prev = level.start;
    for (size_t k = 1; k < level.num_bins && monotone; ++k) {
      const double v = level.start + static_cast<double>(k) * level.step;
      monotone = v > prev;
      prev = v;
    }
    if (!monotone) continue;
    if (!BuildLevel(*table, bin_values, &level)) continue;
    tree->levels.push_back(std::move(level));
  }
  tree->unbuildable = tree->levels.empty();
  return tree;
}

TileStore::TreePtr TileStore::GetOrBuildTree(const std::string& key,
                                             const std::string& table_name,
                                             const std::string& column,
                                             bool categorical,
                                             const TablePtr& table) {
  (void)table_name;
  (void)column;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = trees_.find(key);
    if (it != trees_.end() && it->second->source == table) {
      return it->second;
    }
    if (!options_.build_on_miss) return nullptr;
    if (building_.count(key)) {
      ++stats_.build_conflicts;
      return nullptr;  // another thread is building: fall back, don't block
    }
    building_.insert(key);
  }
  TreePtr tree = BuildTree(table, column, categorical);
  {
    std::lock_guard<std::mutex> lock(mu_);
    trees_[key] = tree;
    building_.erase(key);
    ++stats_.builds;
  }
  return tree;
}

std::optional<TileAnswer> TileStore::TryAnswer(const SelectStmt& stmt) {
  TileShape shape;
  if (!rewrite::MatchTileShape(stmt, &shape)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shape_misses;
    return std::nullopt;
  }
  auto coverage_miss = [this]() -> std::optional<TileAnswer> {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.coverage_misses;
    return std::nullopt;
  };

  auto table_r = engine_->catalog().GetTable(shape.table);
  if (!table_r.ok()) return coverage_miss();
  TablePtr table = *table_r;

  const std::string key =
      TreeKey(shape.table, shape.bin_column, shape.categorical);
  TreePtr tree =
      GetOrBuildTree(key, shape.table, shape.bin_column, shape.categorical,
                     table);
  if (tree == nullptr || tree->unbuildable) return coverage_miss();

  // ---- Level selection ----
  const Level* level = nullptr;
  if (shape.categorical) {
    level = &tree->levels[0];
  } else {
    for (const Level& l : tree->levels) {
      if (l.start == shape.start && l.step == shape.step) {
        level = &l;
        break;
      }
    }
  }
  if (level == nullptr) return coverage_miss();

  std::optional<TileAnswer> answer = AnswerFromLevel(stmt, shape, *tree, *level);
  if (!answer) return coverage_miss();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
  }
  return answer;
}

std::optional<TileAnswer> TileStore::TryAnswerCoarser(const SelectStmt& stmt) {
  TileShape shape;
  if (!rewrite::MatchTileShape(stmt, &shape)) return std::nullopt;
  if (shape.categorical) return std::nullopt;  // single level: nothing coarser

  auto table_r = engine_->catalog().GetTable(shape.table);
  if (!table_r.ok()) return std::nullopt;
  TablePtr table = *table_r;

  // Lookup only — degraded mode must stay cheap, so never build here.
  TreePtr tree;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = trees_.find(TreeKey(shape.table, shape.bin_column, false));
    if (it == trees_.end() || it->second->source != table) return std::nullopt;
    tree = it->second;
  }
  if (tree->unbuildable) return std::nullopt;

  // Coarsest-acceptable-first would lose resolution needlessly; take the
  // finest level at or above the requested step that can answer.
  std::vector<const Level*> candidates;
  for (const Level& l : tree->levels) {
    if (l.step >= shape.step) candidates.push_back(&l);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Level* a, const Level* b) { return a->step < b->step; });
  for (const Level* level : candidates) {
    std::optional<TileAnswer> answer =
        AnswerFromLevel(stmt, shape, *tree, *level);
    if (answer) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.degraded_hits;
      return answer;
    }
  }
  return std::nullopt;
}

std::optional<TileAnswer> TileStore::AnswerFromLevel(const SelectStmt& stmt,
                                                     const TileShape& shape,
                                                     const Tree& tree,
                                                     const Level& level_ref)
    const {
  const Level* level = &level_ref;
  const TablePtr& table = tree.source;

  // ---- Aggregate-argument availability ----
  for (const TileShape::Item& item : shape.items) {
    if (item.kind != TileShape::Item::Kind::kAggregate || item.count_star) {
      continue;
    }
    if (level->FindMeasure(item.agg_column) == nullptr) return std::nullopt;
  }

  // ---- Slot inclusion ----
  const bool has_brush = shape.has_lower || shape.has_upper;
  const BinAggSlots* bin_measure = nullptr;
  if (has_brush) {
    bin_measure = level->FindMeasure(shape.bin_column);
    if (bin_measure == nullptr) return std::nullopt;
  }
  std::vector<size_t> included;
  included.reserve(level->num_bins + 1);
  for (size_t k = 0; k < level->num_bins; ++k) {
    if (level->rows[k] == 0) continue;
    if (has_brush) {
      switch (ClassifySlot(shape, bin_measure->min[k], bin_measure->max[k])) {
        case SlotCoverage::kExcluded:
          continue;
        case SlotCoverage::kPartial:
          return std::nullopt;  // straddling slot: exact answer needs rows
        case SlotCoverage::kIncluded:
          break;
      }
    }
    included.push_back(k);
  }
  // Null bin-column rows survive only an unfiltered scan (any brush
  // comparison on null is null => filtered out).
  if (!has_brush && level->rows[level->num_bins] > 0) {
    included.push_back(level->num_bins);
  }
  std::sort(included.begin(), included.end(), [&](size_t a, size_t b) {
    return level->first_row[a] < level->first_row[b];
  });

  // ---- Emit, replicating the executor's output exactly ----
  std::vector<data::Field> fields;
  fields.reserve(shape.items.size());
  for (size_t i = 0; i < shape.items.size(); ++i) {
    const TileShape::Item& item = shape.items[i];
    DataType t;
    switch (item.kind) {
      case TileShape::Item::Kind::kBin0:
      case TileShape::Item::Kind::kBin1:
        t = DataType::kFloat64;
        break;
      case TileShape::Item::Kind::kKey:
        t = DataType::kString;
        break;
      case TileShape::Item::Kind::kAggregate:
        t = TileAggType(item, table->schema());
        break;
    }
    fields.push_back({sql::DeriveItemName(stmt.items[i], i), t});
  }

  std::vector<Column> columns;
  columns.reserve(fields.size());
  for (size_t i = 0; i < shape.items.size(); ++i) {
    const TileShape::Item& item = shape.items[i];
    Column out(fields[i].type);
    out.Reserve(included.size());
    const BinAggSlots* m = item.kind == TileShape::Item::Kind::kAggregate &&
                                   !item.count_star
                               ? level->FindMeasure(item.agg_column)
                               : nullptr;
    for (size_t k : included) {
      const bool null_slot = k == level->num_bins;
      Value cell = Value::Null();
      switch (item.kind) {
        case TileShape::Item::Kind::kBin0:
          if (!null_slot) {
            cell = Value::Double(level->start +
                                 static_cast<double>(k) * level->step);
          }
          break;
        case TileShape::Item::Kind::kBin1:
          if (!null_slot) {
            cell = Value::Double(
                (level->start + static_cast<double>(k) * level->step) +
                level->step);
          }
          break;
        case TileShape::Item::Kind::kKey:
          if (!null_slot) cell = Value::String(tree.dict->values[k]);
          break;
        case TileShape::Item::Kind::kAggregate: {
          if (item.count_star) {
            cell = Value::Int(level->rows[k]);
            break;
          }
          const int64_t cnt = m->count[k];
          switch (item.op) {
            case AggOp::kCount:
              cell = Value::Int(cnt);
              break;
            case AggOp::kSum:
              if (cnt > 0) cell = Value::Double(m->sum[k]);
              break;
            case AggOp::kAvg:
              if (cnt > 0) {
                cell = Value::Double(m->sum[k] / static_cast<double>(cnt));
              }
              break;
            case AggOp::kMin:
              if (cnt > 0) cell = Value::Double(m->min[k]);
              break;
            case AggOp::kMax:
              if (cnt > 0) cell = Value::Double(m->max[k]);
              break;
            default:
              break;  // unreachable: matcher rejects other ops
          }
          break;
        }
      }
      out.Append(cell);
    }
    columns.push_back(std::move(out));
  }

  TileAnswer answer;
  answer.table = std::make_shared<Table>(data::Schema(std::move(fields)),
                                         std::move(columns));
  answer.bins_touched = included.size();
  return answer;
}

}  // namespace tiles
}  // namespace vegaplus
