// Multi-resolution tile store: precomputed per-zoom-level aggregation
// trees answering the bin+aggregate query shapes the VDT pipeline emits
// without touching base rows.
//
// A *tree* covers one (table, bin column) pair. For a numeric column it
// holds one *level* per distinct nice binning of the column's extent
// (ComputeBinning for maxbins 1..max_maxbins, deduplicated on the exact
// (start, step) pair, which is the same enumeration the client-side bin
// transform performs — so a query's bound bin parameters match a level
// exactly or not at all). For a dictionary-encoded string column it holds a
// single level keyed by dictionary code (categorical bar charts).
//
// Each level stores, per bin slot (plus one trailing slot for rows whose
// bin column is null):
//   - rows        total rows landing in the slot (COUNT(*))
//   - first_row   smallest base-table row index in the slot, which is the
//                 group's first-seen position in any full-bin selection —
//                 emitting included slots in ascending first_row reproduces
//                 the executor's group output order exactly
//   - measures    per numeric/bool/timestamp column: non-null count, sum,
//                 min, max — enough for COUNT/SUM/AVG/MIN/MAX
//
// Bit-identity with base execution: slot accumulation runs over fixed
// MorselRows()-sized chunks merged in chunk order, the same partial-state
// discipline as the executor's AggChunkSize chunking, and min/max/merge
// replicate AggState semantics (strict compares, NaN never displaces, first
// valid initializes). COUNT/MIN/MAX are therefore bit-identical always;
// SUM/AVG are bit-identical whenever the executor's chunk size equals
// MorselRows() and the query selects whole bins over the full table — which
// covers every shape the rewriter emits at interactive cardinalities — and
// exact for any chunking when the addends are exactly representable
// (integer or quantized data). Brushes are answered only when every slot is
// entirely inside or entirely outside the brush (checked against the slot's
// stored value min/max); a straddling slot falls back to base execution.
//
// Concurrency: TryAnswer is thread-safe. A missing tree is built by the
// first requester (single-flight); concurrent requesters for the same tree
// fall back to base execution instead of blocking. Staleness is detected by
// TablePtr identity — re-registering a table drops its trees on next probe.
#ifndef VEGAPLUS_TILES_TILE_STORE_H_
#define VEGAPLUS_TILES_TILE_STORE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "data/table.h"
#include "expr/batch_eval.h"
#include "sql/sql_ast.h"

namespace vegaplus {
namespace rewrite {
struct TileShape;
}  // namespace rewrite
namespace sql {
class Engine;
}  // namespace sql

namespace tiles {

/// Process-wide kill switch (default on). Middleware snapshots this via
/// runtime::EngineConfig at construction; flipping it afterwards affects
/// only middlewares constructed later.
bool TileServingEnabled();
void SetTileServingEnabled(bool enabled);

struct TileStoreOptions {
  /// Zoom levels are enumerated as ComputeBinning(extent, maxbins) for
  /// maxbins in [1, max_maxbins], deduplicated on (start, step).
  size_t max_maxbins = 512;
  /// Safety cap on slots per level; a finer binning than this is skipped
  /// (queries at that zoom fall back to base execution).
  size_t max_level_bins = 4096;
  /// When false, TryAnswer never builds trees — only pre-built trees hit.
  bool build_on_miss = true;
  /// Out-of-core tile pages: when non-empty, freshly built levels spill
  /// their slot arrays into chunked shard files (storage::TableShard, kind
  /// "TILE") under this directory. Tiles are immutable once built, so the
  /// spilled copy never goes stale while the tree is alive.
  std::string spill_dir;
  /// With spilling on: byte budget for level slot arrays kept resident per
  /// tree (0 = keep everything). Largest levels evict first; a non-resident
  /// level hydrates from its shard file per query and is not re-cached.
  size_t resident_level_bytes = 0;
};

struct TileStoreStats {
  size_t hits = 0;             ///< queries answered from tiles
  size_t shape_misses = 0;     ///< statement not a covered bin shape
  size_t coverage_misses = 0;  ///< shape covered, tiles could not answer
  size_t builds = 0;           ///< trees built (including unbuildable ones)
  size_t build_conflicts = 0;  ///< fallbacks while another thread was building
  size_t builds_aborted = 0;   ///< first-touch builds aborted by cancellation
  size_t degraded_hits = 0;    ///< queries answered coarser via TryAnswerCoarser
  size_t levels_spilled = 0;    ///< levels written to shard files
  size_t levels_evicted = 0;    ///< levels whose slot arrays were dropped
  size_t level_hydrations = 0;  ///< per-query loads of non-resident levels
};

struct TileAnswer {
  data::TablePtr table;
  /// Slots read to form the answer; the middleware's latency model charges
  /// this instead of a base-table scan.
  size_t bins_touched = 0;
};

class TileStore {
 public:
  /// `engine` supplies the catalog for table lookup; it must outlive the
  /// store. The store never executes queries through the engine, so tile
  /// hits leave the engine's lifetime stats untouched.
  explicit TileStore(const sql::Engine* engine, TileStoreOptions options = {});

  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;

  /// Answer a bound statement from tiles, or std::nullopt when the shape is
  /// not covered, the tiles cannot answer it exactly, or the tree is being
  /// built by another thread. `cancel` (optional) checkpoints a first-touch
  /// build: a fired token aborts the build mid-flight without poisoning the
  /// single-flight slot — nothing is cached, the next requester rebuilds.
  std::optional<TileAnswer> TryAnswer(const sql::SelectStmt& stmt,
                                      const common::CancelToken* cancel = nullptr);

  /// Degraded-mode probe: answer the statement's shape at a *coarser* zoom
  /// level than requested (smallest step >= the requested one among levels
  /// already built — never builds). The answer is exact for that coarser
  /// binning, just lower-resolution than asked; the middleware serves it
  /// marked `degraded` when fresh execution is impossible (open breaker,
  /// expired deadline). Numeric trees only; categorical has a single level.
  std::optional<TileAnswer> TryAnswerCoarser(const sql::SelectStmt& stmt);

  /// Drop every tree for `table_name` (e.g. after re-registering data).
  /// Stale trees are also dropped lazily on the next probe.
  void Invalidate(const std::string& table_name);

  TileStoreStats stats() const;
  const TileStoreOptions& options() const { return options_; }

 private:
  struct Level {
    double start = 0;
    double step = 0;
    /// Bin slots; vectors below are sized num_bins + 1 (trailing null slot).
    size_t num_bins = 0;
    std::vector<int64_t> rows;
    std::vector<int64_t> first_row;
    /// Measure slots by column name. The bin column is always present and
    /// doubles as the brush-coverage index (per-slot value min/max).
    std::vector<std::string> measure_names;
    std::vector<expr::BinAggSlots> measure_slots;

    // Out-of-core state. A spilled level keeps its scalars and
    // measure_names resident (tiny); eviction drops only the slot vectors
    // above. Queries against a non-resident level hydrate a transient copy
    // from spill_path.
    bool resident = true;
    size_t approx_bytes = 0;   ///< slot-array footprint estimate
    std::string spill_path;    ///< shard file; empty = never spilled

    const expr::BinAggSlots* FindMeasure(const std::string& name) const;
  };

  struct Tree {
    data::TablePtr source;  ///< identity snapshot for staleness checks
    bool categorical = false;
    bool unbuildable = false;  ///< cached negative: never answers
    std::vector<Level> levels;  ///< numeric: one per zoom; categorical: one
    data::DictPtr dict;         ///< categorical key dictionary
  };
  using TreePtr = std::shared_ptr<const Tree>;

  /// Emit the answer for `stmt`/`shape` from one concrete level, or nullopt
  /// when that level cannot answer exactly (missing measure, straddling
  /// brush slot). Pure — touches no stats or locks.
  std::optional<TileAnswer> AnswerFromLevel(const sql::SelectStmt& stmt,
                                            const rewrite::TileShape& shape,
                                            const Tree& tree,
                                            const Level& level) const;

  TreePtr GetOrBuildTree(const std::string& key, const std::string& table_name,
                         const std::string& column, bool categorical,
                         const data::TablePtr& table,
                         const common::CancelToken* cancel);
  /// Returns nullptr when `cancel` fired mid-build (abort — never cached, as
  /// opposed to a completed-but-unbuildable tree, which is a negative cache
  /// entry).
  std::shared_ptr<Tree> BuildTree(const data::TablePtr& table,
                                  const std::string& column, bool categorical,
                                  const common::CancelToken* cancel) const;
  /// Spill every level of a freshly built tree to shard files under
  /// options_.spill_dir, then evict slot arrays beyond
  /// options_.resident_level_bytes (largest first). Best-effort: a level
  /// whose spill fails stays resident. Returns (spilled, evicted) counts.
  std::pair<size_t, size_t> SpillTree(const std::string& key, Tree* tree) const;
  /// Rebuild a non-resident level's slot arrays from its shard file.
  Result<Level> HydrateLevel(const Level& level) const;
  bool BuildLevel(const data::Table& table, const expr::Vec& bin_values,
                  Level* level, const common::CancelToken* cancel) const;

  const sql::Engine* engine_;
  const TileStoreOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, TreePtr> trees_;
  std::unordered_set<std::string> building_;
  TileStoreStats stats_;
};

}  // namespace tiles
}  // namespace vegaplus

#endif  // VEGAPLUS_TILES_TILE_STORE_H_
