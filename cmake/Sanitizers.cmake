# Sanitizer plumbing for -DVEGAPLUS_SANITIZE=address,undefined style flags.
#
#   vegaplus_apply_sanitizers(<target> <scope> "<comma-list>")
#
# Validates the requested sanitizers and attaches the matching
# -fsanitize compile and link flags to <target> with the given scope.
function(vegaplus_apply_sanitizers target scope sanitize_list)
  if(sanitize_list STREQUAL "")
    return()
  endif()

  string(REPLACE "," ";" requested "${sanitize_list}")
  set(known address undefined leak thread memory)
  foreach(san IN LISTS requested)
    if(NOT san IN_LIST known)
      message(FATAL_ERROR
        "VEGAPLUS_SANITIZE: unknown sanitizer '${san}' "
        "(known: ${known})")
    endif()
  endforeach()

  # MSan and TSan each require exclusive shadow-memory layouts; reject the
  # combinations at configure time instead of failing on the first compile.
  foreach(other address leak memory)
    if(("thread" IN_LIST requested) AND ("${other}" IN_LIST requested))
      message(FATAL_ERROR "VEGAPLUS_SANITIZE: thread and ${other} are mutually exclusive")
    endif()
  endforeach()
  foreach(other address leak)
    if(("memory" IN_LIST requested) AND ("${other}" IN_LIST requested))
      message(FATAL_ERROR "VEGAPLUS_SANITIZE: memory and ${other} are mutually exclusive")
    endif()
  endforeach()

  string(REPLACE ";" "," joined "${requested}")
  set(flags "-fsanitize=${joined}" -fno-omit-frame-pointer)
  target_compile_options(${target} ${scope} ${flags})
  target_link_options(${target} ${scope} ${flags})
  message(STATUS "vegaplus: sanitizers enabled: ${joined}")
endfunction()
