# Helper for declaring one static library per src/ subsystem.
#
#   vegaplus_add_module(<name>
#     SOURCES <files...>
#     [DEPS <other module names...>])
#
# Creates target vegaplus_<name> with alias vegaplus::<name>, exports the
# repo-root `src/` include directory (headers are included as
# "common/status.h" etc.), and links the listed module dependencies
# PUBLIC so transitive includes resolve for consumers.
function(vegaplus_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})

  set(target vegaplus_${name})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(vegaplus::${name} ALIAS ${target})

  target_include_directories(${target} PUBLIC "${PROJECT_SOURCE_DIR}/src")
  target_link_libraries(${target} PRIVATE vegaplus::options)

  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(${target} PUBLIC vegaplus::${dep})
  endforeach()
endfunction()

# Convenience: link an executable against modules + shared options.
function(vegaplus_target_modules target)
  target_link_libraries(${target} PRIVATE vegaplus::options)
  foreach(dep IN LISTS ARGN)
    target_link_libraries(${target} PRIVATE vegaplus::${dep})
  endforeach()
endfunction()
